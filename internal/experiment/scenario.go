package experiment

import (
	"fmt"

	"repro/internal/discovery"
	"repro/internal/frodo"
	"repro/internal/harden"
	"repro/internal/jini"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/upnp"
)

// Options customizes a scenario beyond the paper defaults; the zero value
// reproduces §5 exactly. The mutator hooks implement ablations (Fig. 7
// removes PR1 from FRODO) and sensitivity studies.
type Options struct {
	// UPnP, Jini and Frodo mutate the respective default configurations
	// before the nodes are built.
	UPnP  func(*upnp.Config)
	Jini  func(*jini.Config)
	Frodo func(*frodo.Config)
	// Loss sets an i.i.d. per-frame drop probability, reproducing the
	// message-loss model of the companion study [25].
	Loss float64
	// Link selects the adversarial link-conditioning models (burst loss,
	// heavy-tailed delay, reordering); the zero value keeps the paper's
	// idealized network. Burst loss and Loss are alternatives.
	Link netsim.LinkConfig
	// Harden enables the protocol-hardening layer (internal/harden) on
	// every system built from these options. The zero value keeps the
	// paper-faithful baseline bit-identical.
	Harden discovery.Hardening
}

// netConfig resolves the network configuration the options produce.
func (o Options) netConfig() (netsim.Config, error) {
	cfg := netsim.DefaultConfig()
	cfg.Loss = o.Loss
	cfg.Link = o.Link
	return cfg, cfg.Validate()
}

// Validate reports whether the options produce a valid network
// configuration; callers that must not panic (the live runtime) check
// it before BuildTopology.
func (o Options) Validate() error {
	_, err := o.netConfig()
	return err
}

// hasMutators reports whether any configuration hook is set.
func (o Options) hasMutators() bool {
	return o.UPnP != nil || o.Jini != nil || o.Frodo != nil
}

// Scenario is one built system instance on its own kernel and network.
type Scenario struct {
	System System
	Topo   Topology
	K      *sim.Kernel
	Net    *netsim.Network

	ManagerID netsim.NodeID
	UserIDs   []netsim.NodeID

	// Change bumps the service version and starts update propagation.
	Change func()
	// TargetVersion is the version Users must reach after one change.
	TargetVersion uint64

	rec *recorder

	// makeUser spawns one more User of this system's kind, booting
	// immediately; the churn engine uses it for Poisson arrivals.
	makeUser func(name string) netsim.NodeID
	// makeClient generalizes makeUser for the live gateway: a User with
	// its own query and consistency listener. It returns the node ID and
	// a visitor over the User's cached records, the gateway's read path
	// into live protocol state. makeUser is makeClient specialized to
	// the measured printer query and the run recorder.
	makeClient func(name string, q discovery.Query, l discovery.ConsistencyListener) (netsim.NodeID, func(func(discovery.ServiceRecord)))
	// makeManager spawns one more Manager hosting sd, booting
	// immediately; it returns the node ID and the service's change
	// closure. The live gateway uses it for external registrations.
	makeManager func(name string, sd discovery.ServiceDescription) (netsim.NodeID, func(func(map[string]string)))
	// absent tracks Users currently churned out of the network.
	absent map[netsim.NodeID]bool
	// stopUser quiesces one User's protocol instance so its node can be
	// retired; it reports false when the node cannot be detached (e.g. a
	// FRODO 300D node currently serving as Central or Backup).
	stopUser map[netsim.NodeID]func() bool
	// retired freezes the outcomes of permanently departed Users whose
	// node slots were recycled for later arrivals.
	retired []metrics.UserOutcome

	// onChange, when set, runs after every scheduled service change —
	// the consistency oracle's publication tap. It is cleared on every
	// build and rearm, so a tap never leaks into the workspace's next run.
	onChange func()

	// rearm replays construction for workspace reuse: one closure per
	// boot entity in build order, each restoring the node slot's name,
	// rearming the protocol instance and re-scheduling its boot with the
	// same kernel calls (and RNG draws) the fresh build made. bootNodes
	// is the node-slot count at the end of construction — slots beyond it
	// belong to churn arrivals and are released on rearm.
	rearm     []func()
	bootNodes int
}

// rearmable is the replay surface shared by every protocol instance the
// rearm plan manages: reset to construction state, reschedule the boot,
// report the node slot.
type rearmable interface {
	Rearm()
	Start(sim.Duration)
	ID() netsim.NodeID
}

// recorder observes User cache writes and keeps the first time each User
// reached the target version — the U(i,j) samples. With background
// Managers in the topology it filters on the measured Manager so
// unrelated services never count as consistency.
type recorder struct {
	target  uint64
	manager netsim.NodeID // NoNode until the measured Manager is built
	first   map[netsim.NodeID]sim.Time
	// chain, when set, observes every cache write unfiltered (before the
	// measured-Manager and version gates) — the oracle's consistency tap.
	chain discovery.ConsistencyListener
}

func (r *recorder) CacheUpdated(t sim.Time, user, manager netsim.NodeID, version uint64) {
	if r.chain != nil {
		r.chain.CacheUpdated(t, user, manager, version)
	}
	if r.manager != netsim.NoNode && manager != r.manager {
		return
	}
	if version < r.target {
		return
	}
	if _, ok := r.first[user]; !ok {
		r.first[user] = t
	}
}

// ReachedAt reports when the User first held the target version.
func (s *Scenario) ReachedAt(user netsim.NodeID) (sim.Time, bool) {
	at, ok := s.rec.first[user]
	return at, ok
}

// RetiredOutcomes reports the Users that departed permanently and whose
// node slots were recycled. Their outcomes were frozen at departure
// (interfaces pinned down, so nothing can change afterwards); the run
// result appends them after the live Users.
func (s *Scenario) RetiredOutcomes() []metrics.UserOutcome { return s.retired }

// SetTargetVersion adjusts the version the consistency recorder waits
// for (1 + number of changes).
func (s *Scenario) SetTargetVersion(v uint64) {
	s.TargetVersion = v
	s.rec.target = v
}

// TapConsistency chains a listener onto the run's cache-write recorder.
// The tap sees every User cache write unfiltered; one tap per run (a
// second call replaces the first). The run-time oracle uses it to audit
// the version-bound invariant online.
func (s *Scenario) TapConsistency(l discovery.ConsistencyListener) { s.rec.chain = l }

// TapChange registers fn to run after every scheduled service change —
// the oracle's record of what the Manager has published. Direct calls to
// s.Change (ablation harnesses) bypass the tap; the run driver always
// goes through fireChange.
func (s *Scenario) TapChange(fn func()) { s.onChange = fn }

// AddTracer attaches t alongside any tracer already installed on the
// scenario's network, so an observer never displaces the event log.
func (s *Scenario) AddTracer(t netsim.Tracer) {
	s.Net.SetTracer(netsim.TeeTracer(s.Net.Tracer(), t))
}

// fireChange applies one scheduled service change and notifies the
// change tap.
func (s *Scenario) fireChange() {
	s.Change()
	if s.onChange != nil {
		s.onChange()
	}
}

// FireChange applies one service change through the change tap, exactly
// as the run driver's scheduled changes do. The live gateway uses it
// for external updates of the measured service, so an attached oracle
// sees the publication before any User can cache the new version.
func (s *Scenario) FireChange() { s.fireChange() }

// printerSD is the example service of §4: a color printer.
func printerSD() discovery.ServiceDescription {
	return discovery.ServiceDescription{
		DeviceType:  "Printer",
		ServiceType: "ColorPrinter",
		Attributes:  map[string]string{"PaperSize": "A4", "Location": "Study"},
	}
}

var printerQuery = discovery.Query{ServiceType: "ColorPrinter"}

// auxSD is a background service hosted by Manager j ≥ 1: one of the
// topology's Services distinct types, assigned round-robin, never
// matching the measured printer query.
func auxSD(topo Topology, j int) discovery.ServiceDescription {
	kind := 1 + (j-1)%topo.Services
	return discovery.ServiceDescription{
		DeviceType:  "Aux",
		ServiceType: fmt.Sprintf("AuxService%d", kind),
		Attributes:  map[string]string{"Slot": fmt.Sprintf("%d", j)},
	}
}

// changePrinter is the §4 example change: the paper tray empties / the
// service type flips — any attribute mutation bumps the version.
func changePrinter(attrs map[string]string) { attrs["ServiceType2"] = "Black&WhitePrinter" }

// Build constructs one of the five systems with the Table 4 topology on a
// fresh network owned by kernel k. nUsers is 5 in the paper. It is the
// fixed-shape wrapper around BuildTopology.
func Build(sys System, k *sim.Kernel, nUsers int, opts Options) *Scenario {
	return BuildTopology(sys, k, Topology{Users: nUsers}, opts)
}

// BuildTopology constructs a system instance of arbitrary shape: Registry
// and Manager counts, background services and the User population all
// come from the topology spec. The zero-value spec rebuilds the paper's
// design, including the boot order (Registries, then Managers, then
// Users) and its randomized per-node jitter, so default runs replay the
// seed experiments bit-for-bit.
func BuildTopology(sys System, k *sim.Kernel, topo Topology, opts Options) *Scenario {
	return buildTopology(nil, sys, k, topo, opts)
}

// buildTopology is BuildTopology with an optional workspace: with ws set
// the scenario borrows the workspace's network, recorder and ledgers
// (reset, capacity retained) instead of allocating fresh ones — and,
// when the workspace's cached scenario already has this exact shape, the
// whole protocol-instance graph is rearmed in place instead of rebuilt.
func buildTopology(ws *Workspace, sys System, k *sim.Kernel, topo Topology, opts Options) *Scenario {
	topo = topo.normalized(sys, 0)
	// Invalid network options fail here, at build entry, before any
	// simulation state is touched — never partway through a sweep.
	netCfg, err := opts.netConfig()
	if err != nil {
		panic(fmt.Sprintf("experiment: invalid network options: %v", err))
	}
	key := scenarioKey{sys: sys, topo: topo, loss: opts.Loss, link: opts.Link, hasMutators: opts.hasMutators(), harden: opts.Harden}
	if ws != nil && ws.reusable(key) {
		return rearmTopology(ws, k, netCfg)
	}
	if ws != nil {
		// Invalidate before touching the network: a panic mid-build must
		// not leave a stale cached scenario that a later same-shape run
		// would rearm against rebuilt node slots.
		ws.invalidate()
	}

	sc := &Scenario{System: sys, Topo: topo, K: k, TargetVersion: 2}
	if ws != nil {
		sc.Net = ws.network(k, netCfg)
		sc.rec, sc.absent, sc.stopUser, sc.UserIDs, sc.retired = ws.scratch(topo.Users)
	} else {
		sc.Net, err = netsim.New(k, netCfg)
		if err != nil {
			panic(fmt.Sprintf("experiment: %v", err)) // unreachable: netConfig validated
		}
		sc.rec = &recorder{target: 2, manager: netsim.NoNode, first: make(map[netsim.NodeID]sim.Time, topo.Users)}
		sc.absent = map[netsim.NodeID]bool{}
		sc.stopUser = map[netsim.NodeID]func() bool{}
	}
	// Rearm closures are only worth recording when a workspace may reuse
	// them.
	record := ws != nil
	nw := sc.Net

	// Nodes boot staggered inside the first seconds; discovery completes
	// well within the failure-free first 100s. Infrastructure takes the
	// first slots, Users follow on their own (usually denser) spacing.
	infraBoot := func(slot int) sim.Duration {
		return sim.Duration(slot)*topo.BootSpacing + k.UniformDuration(0, topo.BootJitter)
	}
	userBase := sim.Duration(topo.Registries+topo.Managers) * topo.BootSpacing
	userBoot := func(i int) sim.Duration {
		return userBase + sim.Duration(i)*topo.UserBootSpacing + k.UniformDuration(0, topo.BootJitter)
	}

	// The recorded rearm closures: one per boot entity, replaying exactly
	// what construction did — restore the slot name, reset the instance,
	// re-draw the boot jitter and reschedule — in build order, so the
	// kernel sees the same calls (and RNG draws) as a fresh build.
	addInfraRearm := func(inst rearmable, name string, slot int) {
		if !record {
			return
		}
		sc.rearm = append(sc.rearm, func() {
			nw.Node(inst.ID()).Name = name
			inst.Rearm()
			inst.Start(infraBoot(slot))
		})
	}
	addUserRearm := func(u rearmable, name string, i int, stop func() bool) {
		if !record {
			return
		}
		sc.rearm = append(sc.rearm, func() {
			nw.Node(u.ID()).Name = name
			u.Rearm()
			u.Start(userBoot(i))
			sc.UserIDs = append(sc.UserIDs, u.ID())
			sc.stopUser[u.ID()] = stop
		})
	}

	switch sys {
	case UPnP:
		cfg := upnp.DefaultConfig()
		if opts.UPnP != nil {
			opts.UPnP(&cfg)
		}
		harden.UPnP(&cfg, opts.Harden)
		for j := 0; j < topo.Managers; j++ {
			j := j
			sd := printerSD()
			if j > 0 {
				sd = auxSD(topo, j)
			}
			name := managerName(j)
			m := upnp.NewManager(nw.AddNode(name), cfg, sd)
			m.Start(infraBoot(j))
			if j == 0 {
				sc.ManagerID = m.ID()
				sc.Change = func() { m.ChangeService(changePrinter) }
			}
			addInfraRearm(m, name, j)
		}
		newUser := func(name string, q discovery.Query, l discovery.ConsistencyListener) *upnp.User {
			u := upnp.NewUser(nw.AddNode(name), cfg, q, l)
			sc.stopUser[u.ID()] = func() bool { u.Stop(); return true }
			return u
		}
		sc.makeClient = func(name string, q discovery.Query, l discovery.ConsistencyListener) (netsim.NodeID, func(func(discovery.ServiceRecord))) {
			u := newUser(name, q, l)
			u.Start(0)
			return u.ID(), u.EachCached
		}
		sc.makeManager = func(name string, sd discovery.ServiceDescription) (netsim.NodeID, func(func(map[string]string))) {
			m := upnp.NewManager(nw.AddNode(name), cfg, sd)
			m.Start(0)
			return m.ID(), m.ChangeService
		}
		for i := 0; i < topo.Users; i++ {
			i := i
			name := userName(i)
			u := newUser(name, printerQuery, sc.rec)
			stop := sc.stopUser[u.ID()]
			u.Start(userBoot(i))
			sc.UserIDs = append(sc.UserIDs, u.ID())
			addUserRearm(u, name, i, stop)
		}

	case Jini1, Jini2:
		cfg := jini.DefaultConfig()
		if opts.Jini != nil {
			opts.Jini(&cfg)
		}
		harden.Jini(&cfg, opts.Harden)
		for i := 0; i < topo.Registries; i++ {
			i := i
			name := registryName(sys, i)
			reg := jini.NewRegistry(nw.AddNode(name), cfg)
			reg.Start(infraBoot(i))
			addInfraRearm(reg, name, i)
		}
		for j := 0; j < topo.Managers; j++ {
			j := j
			sd := printerSD()
			if j > 0 {
				sd = auxSD(topo, j)
			}
			name := managerName(j)
			m := jini.NewManager(nw.AddNode(name), cfg, sd)
			m.Start(infraBoot(topo.Registries + j))
			if j == 0 {
				sc.ManagerID = m.ID()
				sc.Change = func() { m.ChangeService(changePrinter) }
			}
			addInfraRearm(m, name, topo.Registries+j)
		}
		newUser := func(name string, q discovery.Query, l discovery.ConsistencyListener) *jini.User {
			u := jini.NewUser(nw.AddNode(name), cfg, q, l)
			sc.stopUser[u.ID()] = func() bool { u.Stop(); return true }
			return u
		}
		sc.makeClient = func(name string, q discovery.Query, l discovery.ConsistencyListener) (netsim.NodeID, func(func(discovery.ServiceRecord))) {
			u := newUser(name, q, l)
			u.Start(0)
			return u.ID(), u.EachCached
		}
		sc.makeManager = func(name string, sd discovery.ServiceDescription) (netsim.NodeID, func(func(map[string]string))) {
			m := jini.NewManager(nw.AddNode(name), cfg, sd)
			m.Start(0)
			return m.ID(), m.ChangeService
		}
		for i := 0; i < topo.Users; i++ {
			i := i
			name := userName(i)
			u := newUser(name, printerQuery, sc.rec)
			stop := sc.stopUser[u.ID()]
			u.Start(userBoot(i))
			sc.UserIDs = append(sc.UserIDs, u.ID())
			addUserRearm(u, name, i, stop)
		}

	case Frodo3P, Frodo2P:
		cfg := frodo.DefaultConfig()
		mgrClass, mgrPower := frodo.Class3D, 5
		userClass := frodo.Class3D
		if sys == Frodo2P {
			cfg = frodo.TwoPartyConfig()
			mgrClass, mgrPower = frodo.Class300D, 5
			userClass = frodo.Class300D
		}
		if opts.Frodo != nil {
			opts.Frodo(&cfg)
		}
		harden.Frodo(&cfg, opts.Harden)
		for i := 0; i < topo.Registries; i++ {
			i := i
			name := registryName(sys, i)
			reg := frodo.NewNode(nw.AddNode(name), cfg, frodo.Class300D, registryPower(i))
			reg.Start(infraBoot(i))
			addInfraRearm(reg, name, i)
		}
		for j := 0; j < topo.Managers; j++ {
			j := j
			sd := printerSD()
			if j > 0 {
				sd = auxSD(topo, j)
			}
			name := managerName(j)
			mn := frodo.NewNode(nw.AddNode(name), cfg, mgrClass, mgrPower)
			m := mn.AttachManager(sd)
			mn.Start(infraBoot(topo.Registries + j))
			if j == 0 {
				sc.ManagerID = m.ID()
				sc.Change = func() { m.ChangeService(changePrinter) }
			}
			addInfraRearm(mn, name, topo.Registries+j)
		}
		newUser := func(name string, q discovery.Query, l discovery.ConsistencyListener) *frodo.Node {
			un := frodo.NewNode(nw.AddNode(name), cfg, userClass, 1)
			un.AttachUser(q, l)
			sc.stopUser[un.ID()] = un.Detach
			return un
		}
		sc.makeClient = func(name string, q discovery.Query, l discovery.ConsistencyListener) (netsim.NodeID, func(func(discovery.ServiceRecord))) {
			un := newUser(name, q, l)
			un.Start(0)
			return un.ID(), un.User().EachCached
		}
		sc.makeManager = func(name string, sd discovery.ServiceDescription) (netsim.NodeID, func(func(map[string]string))) {
			mn := frodo.NewNode(nw.AddNode(name), cfg, mgrClass, mgrPower)
			m := mn.AttachManager(sd)
			mn.Start(0)
			return m.ID(), m.ChangeService
		}
		for i := 0; i < topo.Users; i++ {
			i := i
			name := userName(i)
			un := newUser(name, printerQuery, sc.rec)
			stop := sc.stopUser[un.ID()]
			un.Start(userBoot(i))
			sc.UserIDs = append(sc.UserIDs, un.ID())
			addUserRearm(un, name, i, stop)
		}

	default:
		panic("experiment: unknown system")
	}
	// The churn engine's arrival hook is the live-client spawner
	// specialized to the measured requirement and the run recorder.
	sc.makeUser = func(name string) netsim.NodeID {
		id, _ := sc.makeClient(name, printerQuery, sc.rec)
		return id
	}
	sc.rec.manager = sc.ManagerID
	sc.bootNodes = nw.Nodes()
	if record {
		ws.cache(sc, key)
	}
	return sc
}

// rearmTopology replays the cached scenario's construction on the reset
// kernel: the network keeps the boot node slots (endpoints re-bound by
// each instance's rearm), the workspace ledgers are cleared, and the
// recorded rearm closures re-run the boot schedule in build order — the
// same kernel calls, the same RNG draws, the same event sequence numbers
// as a fresh build, with ~no allocation.
func rearmTopology(ws *Workspace, k *sim.Kernel, netCfg netsim.Config) *Scenario {
	sc := ws.scen
	key := ws.scenKey
	// Same panic-safety rule as the cold build: only a fully rearmed
	// scenario may stay cached.
	ws.invalidate()
	sc.K = k
	sc.Net.Rearm(k, netCfg, sc.bootNodes)
	sc.rec, sc.absent, sc.stopUser, sc.UserIDs, sc.retired = ws.scratch(sc.Topo.Users)
	sc.TargetVersion = 2
	sc.onChange = nil
	for _, replay := range sc.rearm {
		replay()
	}
	sc.rec.manager = sc.ManagerID
	ws.cache(sc, key)
	return sc
}

// SpawnUser adds one more User of the scenario's system mid-run, with
// its own query and consistency listener, booting immediately. It
// returns the new node's ID and a visitor over the User's cached
// service records — the live gateway's read path into protocol state.
// Spawned Users are not part of UserIDs and never enter the Update
// Metrics; like every scenario mutation, SpawnUser must run on the
// kernel's goroutine (the live Driver serializes it).
func (s *Scenario) SpawnUser(name string, q discovery.Query, l discovery.ConsistencyListener) (netsim.NodeID, func(func(discovery.ServiceRecord))) {
	return s.makeClient(name, q, l)
}

// SpawnManager adds one more Manager hosting sd mid-run, booting
// immediately. It returns the Manager's node ID and the service-change
// closure (the live gateway's update path). Same concurrency contract
// as SpawnUser.
func (s *Scenario) SpawnManager(name string, sd discovery.ServiceDescription) (netsim.NodeID, func(mutate func(map[string]string))) {
	return s.makeManager(name, sd)
}

// RegistryIDs reports the node IDs of the Registry-role infrastructure:
// the build order places Registries in the first slots. Empty for UPnP,
// which has no Registry role. The live gateway unicasts lookups here.
func (s *Scenario) RegistryIDs() []netsim.NodeID {
	ids := make([]netsim.NodeID, 0, s.Topo.Registries)
	for i := 0; i < s.Topo.Registries; i++ {
		ids = append(ids, netsim.NodeID(i))
	}
	return ids
}

// AllNodeIDs lists every node for the failure planner. On a sharded
// fabric each shard's scenario lists its own nodes with the shard baked
// into the IDs; unsharded networks are shard 0, where the encoding is
// the plain table index.
func (s *Scenario) AllNodeIDs() []netsim.NodeID {
	ids := make([]netsim.NodeID, 0, s.Net.Nodes())
	for i := 0; i < s.Net.Nodes(); i++ {
		ids = append(ids, netsim.MakeNodeID(s.Net.Shard(), i))
	}
	return ids
}

// PaperLayout reports the Build node ordering for a system's default
// topology without building it: the Registry IDs, the Manager's ID and
// the first User's ID. Used by callers that inject explicit failures
// (the guarantee checker).
func PaperLayout(sys System) (registries []netsim.NodeID, manager, firstUser netsim.NodeID) {
	switch sys {
	case UPnP:
		return nil, 0, 1
	case Jini1:
		return []netsim.NodeID{0}, 1, 2
	case Jini2:
		return []netsim.NodeID{0, 1}, 2, 3
	case Frodo3P:
		return []netsim.NodeID{0}, 1, 2
	case Frodo2P:
		// Central, Backup, Manager, Users…
		return []netsim.NodeID{0}, 2, 3
	default:
		panic("experiment: unknown system")
	}
}
