package experiment

import (
	"repro/internal/discovery"
	"repro/internal/frodo"
	"repro/internal/jini"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/upnp"
)

// Options customizes a scenario beyond the paper defaults; the zero value
// reproduces §5 exactly. The mutator hooks implement ablations (Fig. 7
// removes PR1 from FRODO) and sensitivity studies.
type Options struct {
	// UPnP, Jini and Frodo mutate the respective default configurations
	// before the nodes are built.
	UPnP  func(*upnp.Config)
	Jini  func(*jini.Config)
	Frodo func(*frodo.Config)
	// Loss sets an i.i.d. per-frame drop probability, reproducing the
	// message-loss model of the companion study [25].
	Loss float64
}

// Scenario is one built system instance on its own kernel and network.
type Scenario struct {
	System System
	K      *sim.Kernel
	Net    *netsim.Network

	ManagerID netsim.NodeID
	UserIDs   []netsim.NodeID

	// Change bumps the service version and starts update propagation.
	Change func()
	// TargetVersion is the version Users must reach after one change.
	TargetVersion uint64

	rec *recorder
}

// recorder observes User cache writes and keeps the first time each User
// reached the target version — the U(i,j) samples.
type recorder struct {
	target uint64
	first  map[netsim.NodeID]sim.Time
}

func (r *recorder) CacheUpdated(t sim.Time, user, _ netsim.NodeID, version uint64) {
	if version < r.target {
		return
	}
	if _, ok := r.first[user]; !ok {
		r.first[user] = t
	}
}

// ReachedAt reports when the User first held the target version.
func (s *Scenario) ReachedAt(user netsim.NodeID) (sim.Time, bool) {
	at, ok := s.rec.first[user]
	return at, ok
}

// SetTargetVersion adjusts the version the consistency recorder waits
// for (1 + number of changes).
func (s *Scenario) SetTargetVersion(v uint64) {
	s.TargetVersion = v
	s.rec.target = v
}

// printerSD is the example service of §4: a color printer.
func printerSD() discovery.ServiceDescription {
	return discovery.ServiceDescription{
		DeviceType:  "Printer",
		ServiceType: "ColorPrinter",
		Attributes:  map[string]string{"PaperSize": "A4", "Location": "Study"},
	}
}

var printerQuery = discovery.Query{ServiceType: "ColorPrinter"}

// changePrinter is the §4 example change: the paper tray empties / the
// service type flips — any attribute mutation bumps the version.
func changePrinter(attrs map[string]string) { attrs["ServiceType2"] = "Black&WhitePrinter" }

// Build constructs one of the five systems with the Table 4 topology on a
// fresh network owned by kernel k. nUsers is 5 in the paper.
func Build(sys System, k *sim.Kernel, nUsers int, opts Options) *Scenario {
	netCfg := netsim.DefaultConfig()
	netCfg.Loss = opts.Loss
	nw := netsim.New(k, netCfg)
	sc := &Scenario{System: sys, K: k, Net: nw, TargetVersion: 2,
		rec: &recorder{target: 2, first: map[netsim.NodeID]sim.Time{}}}

	boot := func(slot int) sim.Duration {
		// Nodes boot staggered inside the first few seconds; discovery
		// completes well within the failure-free first 100s.
		return sim.Duration(slot)*sim.Second + k.UniformDuration(0, sim.Second)
	}

	switch sys {
	case UPnP:
		cfg := upnp.DefaultConfig()
		if opts.UPnP != nil {
			opts.UPnP(&cfg)
		}
		m := upnp.NewManager(nw.AddNode("Manager"), cfg, printerSD())
		m.Start(boot(0))
		sc.ManagerID = m.ID()
		sc.Change = func() { m.ChangeService(changePrinter) }
		for i := 0; i < nUsers; i++ {
			u := upnp.NewUser(nw.AddNode(userName(i)), cfg, printerQuery, sc.rec)
			u.Start(boot(i + 1))
			sc.UserIDs = append(sc.UserIDs, u.ID())
		}

	case Jini1, Jini2:
		cfg := jini.DefaultConfig()
		if opts.Jini != nil {
			opts.Jini(&cfg)
		}
		nRegs := 1
		if sys == Jini2 {
			nRegs = 2
		}
		for i := 0; i < nRegs; i++ {
			reg := jini.NewRegistry(nw.AddNode("Registry"), cfg)
			reg.Start(boot(i))
		}
		m := jini.NewManager(nw.AddNode("Manager"), cfg, printerSD())
		m.Start(boot(nRegs))
		sc.ManagerID = m.ID()
		sc.Change = func() { m.ChangeService(changePrinter) }
		for i := 0; i < nUsers; i++ {
			u := jini.NewUser(nw.AddNode(userName(i)), cfg, printerQuery, sc.rec)
			u.Start(boot(nRegs + 1 + i))
			sc.UserIDs = append(sc.UserIDs, u.ID())
		}

	case Frodo3P:
		cfg := frodo.DefaultConfig()
		if opts.Frodo != nil {
			opts.Frodo(&cfg)
		}
		central := frodo.NewNode(nw.AddNode("Registry"), cfg, frodo.Class300D, 100)
		central.Start(boot(0))
		mn := frodo.NewNode(nw.AddNode("Manager"), cfg, frodo.Class3D, 5)
		m := mn.AttachManager(printerSD())
		mn.Start(boot(1))
		sc.ManagerID = m.ID()
		sc.Change = func() { m.ChangeService(changePrinter) }
		for i := 0; i < nUsers; i++ {
			un := frodo.NewNode(nw.AddNode(userName(i)), cfg, frodo.Class3D, 1)
			u := un.AttachUser(printerQuery, sc.rec)
			un.Start(boot(2 + i))
			sc.UserIDs = append(sc.UserIDs, u.ID())
		}

	case Frodo2P:
		cfg := frodo.TwoPartyConfig()
		if opts.Frodo != nil {
			opts.Frodo(&cfg)
		}
		central := frodo.NewNode(nw.AddNode("Registry"), cfg, frodo.Class300D, 100)
		central.Start(boot(0))
		backup := frodo.NewNode(nw.AddNode("Backup"), cfg, frodo.Class300D, 50)
		backup.Start(boot(1))
		mn := frodo.NewNode(nw.AddNode("Manager"), cfg, frodo.Class300D, 5)
		m := mn.AttachManager(printerSD())
		mn.Start(boot(2))
		sc.ManagerID = m.ID()
		sc.Change = func() { m.ChangeService(changePrinter) }
		for i := 0; i < nUsers; i++ {
			un := frodo.NewNode(nw.AddNode(userName(i)), cfg, frodo.Class300D, 1)
			u := un.AttachUser(printerQuery, sc.rec)
			un.Start(boot(3 + i))
			sc.UserIDs = append(sc.UserIDs, u.ID())
		}

	default:
		panic("experiment: unknown system")
	}
	return sc
}

func userName(i int) string { return "User" + string(rune('1'+i)) }

// AllNodeIDs lists every node for the failure planner.
func (s *Scenario) AllNodeIDs() []netsim.NodeID {
	ids := make([]netsim.NodeID, 0, s.Net.Nodes())
	for i := 0; i < s.Net.Nodes(); i++ {
		ids = append(ids, netsim.NodeID(i))
	}
	return ids
}

// Topology reports the Build node ordering for a system without building
// it: the Registry IDs, the Manager's ID and the first User's ID. Used
// by callers that inject explicit failures (the guarantee checker).
func Topology(sys System) (registries []netsim.NodeID, manager, firstUser netsim.NodeID) {
	switch sys {
	case UPnP:
		return nil, 0, 1
	case Jini1:
		return []netsim.NodeID{0}, 1, 2
	case Jini2:
		return []netsim.NodeID{0, 1}, 2, 3
	case Frodo3P:
		return []netsim.NodeID{0}, 1, 2
	case Frodo2P:
		// Central, Backup, Manager, Users…
		return []netsim.NodeID{0}, 2, 3
	default:
		panic("experiment: unknown system")
	}
}
