package experiment

import (
	"fmt"

	"repro/internal/discovery"
	"repro/internal/frodo"
	"repro/internal/jini"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/upnp"
)

// Options customizes a scenario beyond the paper defaults; the zero value
// reproduces §5 exactly. The mutator hooks implement ablations (Fig. 7
// removes PR1 from FRODO) and sensitivity studies.
type Options struct {
	// UPnP, Jini and Frodo mutate the respective default configurations
	// before the nodes are built.
	UPnP  func(*upnp.Config)
	Jini  func(*jini.Config)
	Frodo func(*frodo.Config)
	// Loss sets an i.i.d. per-frame drop probability, reproducing the
	// message-loss model of the companion study [25].
	Loss float64
}

// Scenario is one built system instance on its own kernel and network.
type Scenario struct {
	System System
	Topo   Topology
	K      *sim.Kernel
	Net    *netsim.Network

	ManagerID netsim.NodeID
	UserIDs   []netsim.NodeID

	// Change bumps the service version and starts update propagation.
	Change func()
	// TargetVersion is the version Users must reach after one change.
	TargetVersion uint64

	rec *recorder

	// makeUser spawns one more User of this system's kind, booting
	// immediately; the churn engine uses it for Poisson arrivals.
	makeUser func(name string) netsim.NodeID
	// absent tracks Users currently churned out of the network.
	absent map[netsim.NodeID]bool
	// stopUser quiesces one User's protocol instance so its node can be
	// retired; it reports false when the node cannot be detached (e.g. a
	// FRODO 300D node currently serving as Central or Backup).
	stopUser map[netsim.NodeID]func() bool
	// retired freezes the outcomes of permanently departed Users whose
	// node slots were recycled for later arrivals.
	retired []metrics.UserOutcome
}

// recorder observes User cache writes and keeps the first time each User
// reached the target version — the U(i,j) samples. With background
// Managers in the topology it filters on the measured Manager so
// unrelated services never count as consistency.
type recorder struct {
	target  uint64
	manager netsim.NodeID // NoNode until the measured Manager is built
	first   map[netsim.NodeID]sim.Time
}

func (r *recorder) CacheUpdated(t sim.Time, user, manager netsim.NodeID, version uint64) {
	if r.manager != netsim.NoNode && manager != r.manager {
		return
	}
	if version < r.target {
		return
	}
	if _, ok := r.first[user]; !ok {
		r.first[user] = t
	}
}

// ReachedAt reports when the User first held the target version.
func (s *Scenario) ReachedAt(user netsim.NodeID) (sim.Time, bool) {
	at, ok := s.rec.first[user]
	return at, ok
}

// RetiredOutcomes reports the Users that departed permanently and whose
// node slots were recycled. Their outcomes were frozen at departure
// (interfaces pinned down, so nothing can change afterwards); the run
// result appends them after the live Users.
func (s *Scenario) RetiredOutcomes() []metrics.UserOutcome { return s.retired }

// SetTargetVersion adjusts the version the consistency recorder waits
// for (1 + number of changes).
func (s *Scenario) SetTargetVersion(v uint64) {
	s.TargetVersion = v
	s.rec.target = v
}

// printerSD is the example service of §4: a color printer.
func printerSD() discovery.ServiceDescription {
	return discovery.ServiceDescription{
		DeviceType:  "Printer",
		ServiceType: "ColorPrinter",
		Attributes:  map[string]string{"PaperSize": "A4", "Location": "Study"},
	}
}

var printerQuery = discovery.Query{ServiceType: "ColorPrinter"}

// auxSD is a background service hosted by Manager j ≥ 1: one of the
// topology's Services distinct types, assigned round-robin, never
// matching the measured printer query.
func auxSD(topo Topology, j int) discovery.ServiceDescription {
	kind := 1 + (j-1)%topo.Services
	return discovery.ServiceDescription{
		DeviceType:  "Aux",
		ServiceType: fmt.Sprintf("AuxService%d", kind),
		Attributes:  map[string]string{"Slot": fmt.Sprintf("%d", j)},
	}
}

// changePrinter is the §4 example change: the paper tray empties / the
// service type flips — any attribute mutation bumps the version.
func changePrinter(attrs map[string]string) { attrs["ServiceType2"] = "Black&WhitePrinter" }

// Build constructs one of the five systems with the Table 4 topology on a
// fresh network owned by kernel k. nUsers is 5 in the paper. It is the
// fixed-shape wrapper around BuildTopology.
func Build(sys System, k *sim.Kernel, nUsers int, opts Options) *Scenario {
	return BuildTopology(sys, k, Topology{Users: nUsers}, opts)
}

// BuildTopology constructs a system instance of arbitrary shape: Registry
// and Manager counts, background services and the User population all
// come from the topology spec. The zero-value spec rebuilds the paper's
// design, including the boot order (Registries, then Managers, then
// Users) and its randomized per-node jitter, so default runs replay the
// seed experiments bit-for-bit.
func BuildTopology(sys System, k *sim.Kernel, topo Topology, opts Options) *Scenario {
	return buildTopology(nil, sys, k, topo, opts)
}

// buildTopology is BuildTopology with an optional workspace: with ws set
// the scenario borrows the workspace's network, recorder and ledgers
// (reset, capacity retained) instead of allocating fresh ones.
func buildTopology(ws *Workspace, sys System, k *sim.Kernel, topo Topology, opts Options) *Scenario {
	topo = topo.normalized(sys, 0)
	netCfg := netsim.DefaultConfig()
	netCfg.Loss = opts.Loss
	sc := &Scenario{System: sys, Topo: topo, K: k, TargetVersion: 2}
	if ws != nil {
		sc.Net = ws.network(k, netCfg)
		sc.rec, sc.absent, sc.stopUser, sc.UserIDs, sc.retired = ws.scratch(topo.Users)
	} else {
		sc.Net = netsim.New(k, netCfg)
		sc.rec = &recorder{target: 2, manager: netsim.NoNode, first: make(map[netsim.NodeID]sim.Time, topo.Users)}
		sc.absent = map[netsim.NodeID]bool{}
		sc.stopUser = map[netsim.NodeID]func() bool{}
	}
	nw := sc.Net

	// Nodes boot staggered inside the first seconds; discovery completes
	// well within the failure-free first 100s. Infrastructure takes the
	// first slots, Users follow on their own (usually denser) spacing.
	infraBoot := func(slot int) sim.Duration {
		return sim.Duration(slot)*topo.BootSpacing + k.UniformDuration(0, topo.BootJitter)
	}
	userBase := sim.Duration(topo.Registries+topo.Managers) * topo.BootSpacing
	userBoot := func(i int) sim.Duration {
		return userBase + sim.Duration(i)*topo.UserBootSpacing + k.UniformDuration(0, topo.BootJitter)
	}

	switch sys {
	case UPnP:
		cfg := upnp.DefaultConfig()
		if opts.UPnP != nil {
			opts.UPnP(&cfg)
		}
		for j := 0; j < topo.Managers; j++ {
			sd := printerSD()
			if j > 0 {
				sd = auxSD(topo, j)
			}
			m := upnp.NewManager(nw.AddNode(managerName(j)), cfg, sd)
			m.Start(infraBoot(j))
			if j == 0 {
				sc.ManagerID = m.ID()
				sc.Change = func() { m.ChangeService(changePrinter) }
			}
		}
		newUser := func(name string, boot sim.Duration) netsim.NodeID {
			u := upnp.NewUser(nw.AddNode(name), cfg, printerQuery, sc.rec)
			u.Start(boot)
			sc.stopUser[u.ID()] = func() bool { u.Stop(); return true }
			return u.ID()
		}
		sc.makeUser = func(name string) netsim.NodeID { return newUser(name, 0) }
		for i := 0; i < topo.Users; i++ {
			sc.UserIDs = append(sc.UserIDs, newUser(userName(i), userBoot(i)))
		}

	case Jini1, Jini2:
		cfg := jini.DefaultConfig()
		if opts.Jini != nil {
			opts.Jini(&cfg)
		}
		for i := 0; i < topo.Registries; i++ {
			reg := jini.NewRegistry(nw.AddNode(registryName(sys, i)), cfg)
			reg.Start(infraBoot(i))
		}
		for j := 0; j < topo.Managers; j++ {
			sd := printerSD()
			if j > 0 {
				sd = auxSD(topo, j)
			}
			m := jini.NewManager(nw.AddNode(managerName(j)), cfg, sd)
			m.Start(infraBoot(topo.Registries + j))
			if j == 0 {
				sc.ManagerID = m.ID()
				sc.Change = func() { m.ChangeService(changePrinter) }
			}
		}
		newUser := func(name string, boot sim.Duration) netsim.NodeID {
			u := jini.NewUser(nw.AddNode(name), cfg, printerQuery, sc.rec)
			u.Start(boot)
			sc.stopUser[u.ID()] = func() bool { u.Stop(); return true }
			return u.ID()
		}
		sc.makeUser = func(name string) netsim.NodeID { return newUser(name, 0) }
		for i := 0; i < topo.Users; i++ {
			sc.UserIDs = append(sc.UserIDs, newUser(userName(i), userBoot(i)))
		}

	case Frodo3P, Frodo2P:
		cfg := frodo.DefaultConfig()
		mgrClass, mgrPower := frodo.Class3D, 5
		userClass := frodo.Class3D
		if sys == Frodo2P {
			cfg = frodo.TwoPartyConfig()
			mgrClass, mgrPower = frodo.Class300D, 5
			userClass = frodo.Class300D
		}
		if opts.Frodo != nil {
			opts.Frodo(&cfg)
		}
		for i := 0; i < topo.Registries; i++ {
			reg := frodo.NewNode(nw.AddNode(registryName(sys, i)), cfg, frodo.Class300D, registryPower(i))
			reg.Start(infraBoot(i))
		}
		for j := 0; j < topo.Managers; j++ {
			sd := printerSD()
			if j > 0 {
				sd = auxSD(topo, j)
			}
			mn := frodo.NewNode(nw.AddNode(managerName(j)), cfg, mgrClass, mgrPower)
			m := mn.AttachManager(sd)
			mn.Start(infraBoot(topo.Registries + j))
			if j == 0 {
				sc.ManagerID = m.ID()
				sc.Change = func() { m.ChangeService(changePrinter) }
			}
		}
		newUser := func(name string, boot sim.Duration) netsim.NodeID {
			un := frodo.NewNode(nw.AddNode(name), cfg, userClass, 1)
			u := un.AttachUser(printerQuery, sc.rec)
			un.Start(boot)
			sc.stopUser[u.ID()] = un.Detach
			return u.ID()
		}
		sc.makeUser = func(name string) netsim.NodeID { return newUser(name, 0) }
		for i := 0; i < topo.Users; i++ {
			sc.UserIDs = append(sc.UserIDs, newUser(userName(i), userBoot(i)))
		}

	default:
		panic("experiment: unknown system")
	}
	sc.rec.manager = sc.ManagerID
	return sc
}

// AllNodeIDs lists every node for the failure planner.
func (s *Scenario) AllNodeIDs() []netsim.NodeID {
	ids := make([]netsim.NodeID, 0, s.Net.Nodes())
	for i := 0; i < s.Net.Nodes(); i++ {
		ids = append(ids, netsim.NodeID(i))
	}
	return ids
}

// PaperLayout reports the Build node ordering for a system's default
// topology without building it: the Registry IDs, the Manager's ID and
// the first User's ID. Used by callers that inject explicit failures
// (the guarantee checker).
func PaperLayout(sys System) (registries []netsim.NodeID, manager, firstUser netsim.NodeID) {
	switch sys {
	case UPnP:
		return nil, 0, 1
	case Jini1:
		return []netsim.NodeID{0}, 1, 2
	case Jini2:
		return []netsim.NodeID{0, 1}, 2, 3
	case Frodo3P:
		return []netsim.NodeID{0}, 1, 2
	case Frodo2P:
		// Central, Backup, Manager, Users…
		return []netsim.NodeID{0}, 2, 3
	default:
		panic("experiment: unknown system")
	}
}
