package experiment

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func fastParams(runs int, lambdas []float64) Params {
	p := DefaultParams()
	p.Runs = runs
	p.Lambdas = lambdas
	return p
}

func TestParseSystem(t *testing.T) {
	for _, sys := range Systems() {
		got, err := ParseSystem(sys.Short())
		if err != nil || got != sys {
			t.Errorf("ParseSystem(%q) = %v, %v", sys.Short(), got, err)
		}
	}
	if _, err := ParseSystem("nope"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestDefaultLambdas(t *testing.T) {
	ls := DefaultLambdas()
	if len(ls) != 19 || ls[0] != 0 || ls[18] != 0.9 {
		t.Errorf("lambdas = %v", ls)
	}
}

// Every system reaches full consistency with the paper's m' message
// counts at zero failure — the Table 2 integration check. The effort of
// a single run can exceed m' when an unrelated periodic exchange (an
// announcement train, a renewal) happens to land inside the short
// recovery window, so m' is measured the way the sweep measures it: the
// minimum effort across runs. Each run must still be at least m' — the
// update process cannot take fewer messages than the protocol minimum.
func TestZeroFailureReproducesPaperMPrime(t *testing.T) {
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Short(), func(t *testing.T) {
			minEffort := 1 << 30
			for seed := int64(1); seed <= 5; seed++ {
				res := Run(RunSpec{System: sys, Lambda: 0, Seed: seed, Params: DefaultParams()})
				for _, u := range res.Users {
					if !u.Reached {
						t.Fatalf("seed %d: user %d never consistent at λ=0", seed, u.User)
					}
					if u.At < res.ChangeAt || u.At > res.ChangeAt+sim.Second {
						t.Errorf("seed %d: user %d consistent at %v, change at %v",
							seed, u.User, u.At, res.ChangeAt)
					}
				}
				if res.Effort < PaperMPrime(sys) {
					t.Errorf("seed %d: effort %d below paper m' %d", seed, res.Effort, PaperMPrime(sys))
				}
				if res.Effort < minEffort {
					minEffort = res.Effort
				}
			}
			if minEffort != PaperMPrime(sys) {
				t.Errorf("min effort %d, want paper m' %d", minEffort, PaperMPrime(sys))
			}
		})
	}
}

// Runs replay exactly: identical seeds produce identical observations.
func TestRunDeterminism(t *testing.T) {
	for _, sys := range Systems() {
		spec := RunSpec{System: sys, Lambda: 0.3, Seed: 42, Params: DefaultParams()}
		a := Run(spec)
		b := Run(spec)
		if a.ChangeAt != b.ChangeAt || a.Effort != b.Effort || len(a.Users) != len(b.Users) {
			t.Fatalf("%v: runs diverge: %+v vs %+v", sys, a, b)
		}
		for i := range a.Users {
			if a.Users[i] != b.Users[i] {
				t.Errorf("%v: user %d diverged: %+v vs %+v", sys, i, a.Users[i], b.Users[i])
			}
		}
	}
}

// Different seeds vary the change time and outcomes.
func TestRunSeedsVary(t *testing.T) {
	a := Run(RunSpec{System: UPnP, Lambda: 0, Seed: 1, Params: DefaultParams()})
	b := Run(RunSpec{System: UPnP, Lambda: 0, Seed: 2, Params: DefaultParams()})
	if a.ChangeAt == b.ChangeAt {
		t.Error("different seeds drew the same change time")
	}
}

// A mini-sweep sanity check: metrics near 1 at λ=0 and degrading with λ,
// and the aggregation wiring (m, m', curves) consistent.
func TestMiniSweep(t *testing.T) {
	res := Sweep(SweepConfig{
		Systems: Systems(),
		Params:  fastParams(4, []float64{0, 0.5}),
		Workers: 4,
	})
	if res.M != 7 {
		t.Errorf("m = %d, want 7 (Jini/FRODO minimum)", res.M)
	}
	for _, sys := range Systems() {
		if res.MPrime[sys] != PaperMPrime(sys) {
			t.Errorf("%v: measured m' = %d, paper %d", sys, res.MPrime[sys], PaperMPrime(sys))
		}
		curve := res.Curves[sys]
		if len(curve.Points) != 2 {
			t.Fatalf("%v: %d points", sys, len(curve.Points))
		}
		zero := curve.Points[0]
		if zero.Effectiveness != 1 {
			t.Errorf("%v: effectiveness at λ=0 = %v, want 1", sys, zero.Effectiveness)
		}
		if zero.Responsiveness < 0.99 {
			t.Errorf("%v: responsiveness at λ=0 = %v, want ~1", sys, zero.Responsiveness)
		}
		// Background renewals occasionally land inside the effort window
		// (the change time is random), so λ=0 degradation is near 1 but
		// not exactly 1 in every run.
		if zero.Degradation < 0.8 {
			t.Errorf("%v: degradation at λ=0 = %v, want ~1", sys, zero.Degradation)
		}
		half := curve.Points[1]
		if half.Effectiveness >= zero.Effectiveness {
			t.Errorf("%v: effectiveness did not degrade: %v -> %v",
				sys, zero.Effectiveness, half.Effectiveness)
		}
	}
}

// Sweep determinism: identical configs produce identical curves
// regardless of worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := func(workers int) SweepConfig {
		return SweepConfig{
			Systems: []System{UPnP, Frodo2P},
			Params:  fastParams(3, []float64{0, 0.4}),
			Workers: workers,
		}
	}
	a := Sweep(cfg(1))
	b := Sweep(cfg(8))
	for _, sys := range []System{UPnP, Frodo2P} {
		pa, pb := a.Curves[sys].Points, b.Curves[sys].Points
		for i := range pa {
			if pa[i] != pb[i] {
				t.Errorf("%v point %d differs across worker counts: %+v vs %+v", sys, i, pa[i], pb[i])
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	res := Sweep(SweepConfig{
		Systems: []System{UPnP},
		Params:  fastParams(2, []float64{0}),
		Workers: 2,
	})
	for _, tab := range []Table{Figure4(res), Figure5(res), Figure6(res), Table5(res)} {
		s := tab.String()
		if !strings.Contains(s, "upnp") {
			t.Errorf("table missing system column: %s", s)
		}
		csv := tab.CSV()
		if !strings.Contains(csv, "failure%") && !strings.Contains(csv, "Update Metric") {
			t.Errorf("csv missing header: %s", csv)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	tab := Table2(DefaultParams())
	if len(tab.Rows) != 5 {
		t.Fatalf("Table2 has %d rows", len(tab.Rows))
	}
	// The measured column must match the paper column for every system.
	for _, row := range tab.Rows {
		if row[1] != row[2] {
			t.Errorf("%s: measured %s != paper %s", row[0], row[1], row[2])
		}
	}
}

func TestProgressCallback(t *testing.T) {
	calls := 0
	lastDone, lastTotal := 0, 0
	Sweep(SweepConfig{
		Systems:  []System{UPnP},
		Params:   fastParams(2, []float64{0}),
		Workers:  1,
		Progress: func(done, total int) { calls++; lastDone, lastTotal = done, total },
	})
	if calls != 2 || lastDone != 2 || lastTotal != 2 {
		t.Errorf("progress: calls=%d done=%d total=%d", calls, lastDone, lastTotal)
	}
}
