package experiment

import (
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestTelemetryParity pins the tentpole's central promise: metering a
// run changes nothing about it. The PR-2 golden sweep re-run with a
// registry installed (both through the process default and the spec
// field) must produce the exact fingerprint the unmetered sweep is
// pinned to — telemetry draws no randomness and perturbs no schedule.
func TestTelemetryParity(t *testing.T) {
	p := DefaultParams()
	p.Runs = 2
	p.Lambdas = []float64{0, 0.3}
	p.Topology = Topology{Users: 100}
	p.Churn = Churn{Departures: 0.4, MeanAbsence: 600 * sim.Second, Arrivals: 5}

	reg := obs.NewRegistry()
	SetTelemetry(reg)
	defer SetTelemetry(nil)
	fp := sweepFingerprint(Sweep(SweepConfig{
		Systems: []System{Frodo2P}, Params: p,
		Workers: runtime.GOMAXPROCS(0), RetainRaw: true,
	}))
	if fp != pr2SweepGolden {
		t.Errorf("metered sweep fingerprint %s != golden %s — telemetry perturbed the run", fp, pr2SweepGolden)
	}
	// And the metering actually happened.
	if sent := reg.Counter("sd_frames_sent_total", "shard", "0").Load(); sent == 0 {
		t.Error("telemetry enabled but sd_frames_sent_total{shard=0} stayed 0")
	}
	if ev := reg.Gauge("sd_kernel_events", "shard", "0").Load(); ev == 0 {
		t.Error("telemetry enabled but sd_kernel_events{shard=0} stayed 0")
	}
}

// TestTelemetrySpecOverridesDefault: a spec-level registry wins over
// the process default, and unmetered runs touch neither.
func TestTelemetrySpecOverridesDefault(t *testing.T) {
	def, own := obs.NewRegistry(), obs.NewRegistry()
	SetTelemetry(def)
	defer SetTelemetry(nil)
	p := DefaultParams()
	p.Runs = 1
	p.RunDuration = 600 * sim.Second
	p.ChangeMax = 300 * sim.Second
	Run(RunSpec{System: Frodo2P, Seed: 7, Params: p, Telemetry: own})
	if got := def.Counter("sd_frames_sent_total", "shard", "0").Load(); got != 0 {
		t.Errorf("default registry metered %d frames despite spec override", got)
	}
	if got := own.Counter("sd_frames_sent_total", "shard", "0").Load(); got == 0 {
		t.Error("spec registry metered nothing")
	}
}

// TestShardedTelemetry runs a sharded spec with metering and checks the
// fabric accounting populates: windows advanced, every shard logged
// busy time, barrier stalls were measured, and cross-shard frames
// flowed both ways.
func TestShardedTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	p := DefaultParams()
	p.Runs = 1
	p.RunDuration = 1200 * sim.Second
	p.ChangeMax = 600 * sim.Second
	p.Topology = Topology{Users: 12}
	const shards = 3
	res := Run(RunSpec{System: Frodo2P, Seed: 11, Params: p, Shards: shards, Telemetry: reg})
	if len(res.Users) != 12 {
		t.Fatalf("sharded run returned %d users", len(res.Users))
	}
	if w := reg.Counter("sd_fabric_windows_total").Load(); w == 0 {
		t.Error("no windows counted")
	}
	if n := reg.Histogram("sd_fabric_window_width_virtual").Count(); n == 0 {
		t.Error("no window widths observed")
	}
	var crossTotal uint64
	for s := 0; s < shards; s++ {
		sh := []string{"shard", string(rune('0' + s))}
		if busy := reg.Counter("sd_shard_busy_nanos_total", sh...).Load(); busy == 0 {
			t.Errorf("shard %d logged no busy time", s)
		}
		if sent := reg.Counter("sd_frames_sent_total", sh...).Load(); sent == 0 {
			t.Errorf("shard %d metered no frames", s)
		}
		crossTotal += reg.Counter("sd_shard_cross_frames_in_total", sh...).Load()
	}
	if crossTotal == 0 {
		t.Error("no cross-shard frames metered")
	}
	// Workers parked at barriers while shard 0 coordinates: stall time
	// must register somewhere (any shard, scheduling-dependent).
	var stall uint64
	for s := 0; s < shards; s++ {
		stall += reg.Counter("sd_shard_barrier_stall_nanos_total", "shard", string(rune('0'+s))).Load()
	}
	if stall == 0 {
		t.Error("no barrier stall time measured on any shard")
	}
}

// TestShardedTelemetryParity: a sharded run with metering equals the
// same run without, field for field.
func TestShardedTelemetryParity(t *testing.T) {
	p := DefaultParams()
	p.Runs = 1
	p.RunDuration = 1200 * sim.Second
	p.ChangeMax = 600 * sim.Second
	p.Topology = Topology{Users: 12}
	spec := RunSpec{System: Frodo2P, Seed: 11, Params: p, Shards: 3}
	bare := Run(spec)
	spec.Telemetry = obs.NewRegistry()
	metered := Run(spec)
	if bare.ChangeAt != metered.ChangeAt || bare.Effort != metered.Effort ||
		bare.TotalDiscoverySends != metered.TotalDiscoverySends ||
		bare.TotalTransport != metered.TotalTransport ||
		len(bare.Users) != len(metered.Users) {
		t.Fatalf("metering changed the sharded run:\nbare    %+v\nmetered %+v", bare, metered)
	}
	for i := range bare.Users {
		if bare.Users[i] != metered.Users[i] {
			t.Fatalf("user %d outcome differs: %+v vs %+v", i, bare.Users[i], metered.Users[i])
		}
	}
}
