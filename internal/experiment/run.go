package experiment

import (
	"fmt"
	"sort"

	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Params fixes the experiment design (§5 Step 5). DefaultParams is the
// paper's configuration.
type Params struct {
	// Users is N, the number of Users discovering the Manager.
	Users int
	// RunDuration is the simulation length and deadline D.
	RunDuration sim.Duration
	// ChangeMin/ChangeMax bound the random service change time C
	// ("at a random time between 100s to 2700s").
	ChangeMin, ChangeMax sim.Time
	// Changes is the number of service changes per run. The paper uses
	// exactly one; more changes form the frequent-update extension that
	// exercises SRC2's sequence-gap detection (a gap needs a missed
	// update followed by a received one). Zero means one.
	Changes int
	// FailureWindowStart/End bound the random failure activation time.
	// Zero fields fall back to the paper's window (100s–5400s) unless
	// FailureWindowSet is true, which takes both verbatim — the only way
	// to express a window that genuinely starts (or ends) at 0.
	FailureWindowStart, FailureWindowEnd sim.Time
	// FailureWindowSet marks FailureWindowStart/End as explicit. Without
	// it a deliberate FailureWindowStart of 0 would be silently
	// overwritten with the 100s default.
	FailureWindowSet bool
	// Runs is X, the number of repetitions per (system, λ).
	Runs int
	// Lambdas is the failure-rate sweep.
	Lambdas []float64
	// BaseSeed derives all run seeds; same BaseSeed ⇒ identical sweep.
	BaseSeed int64
	// Topology generalizes the Table 4 scenario shape; the zero value
	// reproduces the paper (Topology.Users falls back to Users above).
	Topology Topology
	// Churn adds Poisson User arrivals and departures during the run;
	// the zero value keeps the paper's static population.
	Churn Churn
	// Partitions schedules transient network splits, applied identically
	// to every run of a sweep. They compose with the λ interface-failure
	// model (partitions isolate node sets; failures take interfaces
	// down). Use netsim.Partition.Bisect for a system-agnostic split —
	// explicit SideB node IDs differ across systems' build orders.
	Partitions []netsim.Partition
	// FlashCrowds schedules arrival spikes: bursts of fresh Users joining
	// within a short window, on top of any Poisson churn.
	FlashCrowds []FlashCrowd
	// RackFailures adds correlated rack-level outages: whole contiguous
	// blocks of the node table lose both interfaces inside one window,
	// composing with the per-node λ plan.
	RackFailures netsim.RackPlanConfig
	// EffortPad extends the effort window so frames of the final
	// exchange still in flight when the last User turns consistent are
	// counted (see DESIGN.md).
	EffortPad sim.Duration
	// Hardening enables the protocol-hardening layer for every run built
	// from these params; it is merged into the run's Options before the
	// topology is built (an explicit Opts.Harden wins). Zero keeps the
	// paper-faithful baseline bit-identical.
	Hardening discovery.Hardening
}

// DefaultParams returns the paper's experiment design: 5 Users, 5400s
// runs, change at U[100s,2700s], failures at U[100s,5400s] lasting
// λ·5400s, λ from 0 to 0.90 in steps of 0.05, 30 runs per point.
func DefaultParams() Params {
	return Params{
		Users:              5,
		RunDuration:        5400 * sim.Second,
		ChangeMin:          100 * sim.Second,
		ChangeMax:          2700 * sim.Second,
		FailureWindowStart: 100 * sim.Second,
		FailureWindowEnd:   5400 * sim.Second,
		Runs:               30,
		Lambdas:            DefaultLambdas(),
		BaseSeed:           1,
		EffortPad:          sim.Second,
	}
}

// withDefaults fills every unset field from DefaultParams while
// preserving what the caller set — notably Topology and Churn, which a
// wholesale DefaultParams replacement would silently discard.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Users == 0 {
		p.Users = d.Users
	}
	if p.RunDuration == 0 {
		p.RunDuration = d.RunDuration
	}
	if p.ChangeMin == 0 {
		p.ChangeMin = d.ChangeMin
	}
	if p.ChangeMax == 0 {
		p.ChangeMax = d.ChangeMax
	}
	if !p.FailureWindowSet {
		if p.FailureWindowStart == 0 {
			p.FailureWindowStart = d.FailureWindowStart
		}
		if p.FailureWindowEnd == 0 {
			p.FailureWindowEnd = d.FailureWindowEnd
		}
	}
	if p.Runs == 0 {
		p.Runs = d.Runs
	}
	if len(p.Lambdas) == 0 {
		p.Lambdas = d.Lambdas
	}
	if p.BaseSeed == 0 {
		p.BaseSeed = d.BaseSeed
	}
	if p.EffortPad == 0 {
		p.EffortPad = d.EffortPad
	}
	return p
}

// DefaultLambdas returns 0.00, 0.05, …, 0.90.
func DefaultLambdas() []float64 {
	out := make([]float64, 0, 19)
	for i := 0; i <= 18; i++ {
		out = append(out, float64(i)*0.05)
	}
	return out
}

// RunSpec identifies a single simulation run.
type RunSpec struct {
	System System
	Lambda float64
	Seed   int64
	Params Params
	Opts   Options
	// ExplicitFailures, when non-nil, replaces the λ-drawn failure plan
	// with a fixed schedule (used by the guarantee checker and the §6.2
	// case studies). Node indices follow the Build order: Registries
	// first, then the Manager, then the Users.
	ExplicitFailures []netsim.InterfaceFailure
	// MakeTracer, when set, builds a tracer for the scenario's network
	// (event logs).
	MakeTracer func(*netsim.Network) netsim.Tracer
	// Attach, when set, observes the built scenario before any schedule
	// is drawn: the run-time consistency oracle hooks its taps (tracer
	// tee, cache-write chain, change notification) here. Attach must not
	// consume the kernel's random stream — the churn, failure and change
	// schedules are drawn afterwards and must replay bit for bit with
	// and without an observer.
	Attach func(*Scenario)
	// Shards, when ≥ 2, partitions the run's topology across that many
	// kernel/network pairs advancing in parallel (see shard.go). 0 or 1
	// is the classic single-fabric path, byte-identical to before the
	// field existed. Sharded runs are deterministic in (Seed, Shards);
	// they support the FRODO systems with churn, flash crowds,
	// partitions, rack failures and per-shard tracers, but not explicit
	// failure schedules or Attach observers (see Validate).
	Shards int
	// Cross characterizes the inter-shard links of a sharded run: the
	// minimum delay is the conservative lookahead bounding each parallel
	// window. The zero value means netsim.DefaultCrossLink; ignored (and
	// rejected by Validate) on unsharded runs.
	Cross netsim.CrossLink
	// AttachSharded is Attach's S ≥ 2 counterpart: it observes the built
	// ShardSet before any schedule is drawn, under the same contract
	// (must not consume any kernel's random stream). Hooks attached to
	// remote shards' scenarios fire on those shards' worker goroutines —
	// see ShardSet.ShardScenario.
	AttachSharded func(*ShardSet)
	// Telemetry, when set, routes this run's frame, kernel and fabric
	// metrics into the given obs registry (tee'd tracers per shard,
	// barrier busy/stall accounting, kernel depth gauges). Nil falls back
	// to the process default installed with SetTelemetry; nil both ways
	// meters nothing. Metering is passive — same schedules, same results,
	// zero allocations on the frame path.
	Telemetry *obs.Registry
}

// Validate reports whether the spec names a runnable configuration,
// rejecting unsupported combinations up front. Sweep-facing callers
// (sdsweep) print the error and exit before any run starts; Run itself
// panics on an invalid spec, since reaching it unvalidated is a
// programming error, not a user mistake.
func (spec RunSpec) Validate() error {
	if spec.Shards < 2 {
		if spec.Cross != (netsim.CrossLink{}) {
			return fmt.Errorf("experiment: cross-shard link configured on an unsharded run (set Shards ≥ 2, or drop the cross-link options)")
		}
		return nil
	}
	if spec.System != Frodo3P && spec.System != Frodo2P {
		return fmt.Errorf("experiment: sharded fabric supports the FRODO systems only (%v uses TCP connections, which cannot span shards)", spec.System)
	}
	if spec.ExplicitFailures != nil {
		return fmt.Errorf("experiment: sharded runs do not support explicit failure schedules (outage plans are drawn per shard); use Lambda or Params.RackFailures")
	}
	if spec.Attach != nil {
		return fmt.Errorf("experiment: sharded runs do not support Attach (it observes one scenario); use AttachSharded")
	}
	if spec.Cross != (netsim.CrossLink{}) {
		if err := spec.Cross.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes one full scenario and returns the raw observations. It
// draws a pooled Workspace, so callers that loop over Run reuse kernel,
// network, recorder and — for same-shape runs — whole protocol-instance
// graphs across iterations. The deferred Put keeps a panicking run from
// leaking its workspace; the panic still propagates, and the workspace's
// next user rebuilds from a clean Reset, so a half-built scenario cannot
// poison the pool.
func Run(spec RunSpec) metrics.RunResult {
	if spec.Shards >= 2 {
		return runSharded(spec)
	}
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	res, _ := runInWorkspace(ws, spec)
	return res
}

// RunInto executes one run on the caller's workspace. Sweep workers use
// it to reuse simulation scratch across consecutive runs on one
// goroutine. A sharded spec builds its own per-shard storage; the
// workspace is untouched.
func RunInto(ws *Workspace, spec RunSpec) metrics.RunResult {
	if spec.Shards >= 2 {
		return runSharded(spec)
	}
	res, _ := runInWorkspace(ws, spec)
	return res
}

// RunLogged executes one run with a paper-style event log attached
// (§6.2): interface transitions, protocol annotations and — when verbose
// — every frame.
func RunLogged(spec RunSpec, verbose bool) (metrics.RunResult, []string) {
	var rec *netsim.Recorder
	spec.MakeTracer = func(nw *netsim.Network) netsim.Tracer {
		rec = netsim.NewRecorder(nw)
		rec.Verbose = verbose
		return rec
	}
	res, sc := run(spec)
	rec.Note(res.Deadline, "service changed at %.0fs (version %d)", res.ChangeAt.Sec(), sc.TargetVersion)
	for _, u := range res.Users {
		name := sc.Net.Node(u.User).Name
		if u.Reached {
			rec.Note(res.Deadline, "%s reached consistency at %.3fs", name, u.At.Sec())
		} else {
			rec.Note(res.Deadline, "%s NEVER regained consistency (Configuration Update Principle violated within D)", name)
		}
	}
	rec.Note(res.Deadline, "update effort y = %d counted discovery messages", res.Effort)
	return res, rec.Lines()
}

// run executes one run on fresh storage; the returned Scenario stays
// valid indefinitely (RunLogged inspects it after the run).
func run(spec RunSpec) (metrics.RunResult, *Scenario) {
	return runInWorkspace(nil, spec)
}

func runInWorkspace(ws *Workspace, spec RunSpec) (metrics.RunResult, *Scenario) {
	var k *sim.Kernel
	if ws != nil {
		k = ws.kernel(spec.Seed)
	} else {
		k = sim.New(spec.Seed)
	}
	topo := spec.Params.Topology
	if topo.Users <= 0 {
		topo.Users = spec.Params.Users
	}
	opts := spec.Opts
	if !opts.Harden.Enabled() {
		opts.Harden = spec.Params.Hardening
	}
	sc := buildTopology(ws, spec.System, k, topo, opts)
	if spec.MakeTracer != nil {
		sc.Net.SetTracer(spec.MakeTracer(sc.Net))
	}
	reg := spec.telemetry()
	if reg != nil {
		// Tee'd in, not installed: metering rides alongside any caller
		// tracer and the oracle's tap, observing the same frames.
		sc.AddTracer(reg.NetTracer(0))
	}
	if spec.Attach != nil {
		spec.Attach(sc)
	}
	// Churn draws its whole schedule now, before the failure plan, so a
	// given seed yields one fixed event timeline. Flash crowds draw no
	// randomness and ride on the same arrival hook.
	sc.ScheduleChurn(spec.Params.Churn, spec.Params.RunDuration)
	sc.ScheduleFlashCrowds(spec.Params.FlashCrowds)

	// Plan the interface failures (§5 Step 2): one outage per node — or
	// use the caller's fixed schedule.
	plan := spec.ExplicitFailures
	if plan == nil {
		plan = netsim.PlanInterfaceFailures(k, sc.AllNodeIDs(), netsim.FailurePlanConfig{
			Lambda:      spec.Lambda,
			WindowStart: spec.Params.FailureWindowStart,
			WindowEnd:   spec.Params.FailureWindowEnd,
			RunDuration: spec.Params.RunDuration,
		})
	}
	sc.Net.ScheduleFailures(plan)
	// Correlated rack outages draw after the λ plan and compose with it;
	// a disabled config draws nothing, keeping default runs bit-identical.
	if spec.Params.RackFailures.Enabled() {
		sc.Net.ScheduleFailures(netsim.PlanRackFailures(k, sc.AllNodeIDs(), spec.Params.RackFailures))
	}
	// Transient partitions ride on top of the failure plan; scheduling
	// them draws no randomness, so default runs replay unchanged.
	sc.Net.SchedulePartitions(spec.Params.Partitions)

	// Schedule the service change(s) at C ~ U[ChangeMin, ChangeMax]. With
	// multiple changes (the frequent-update extension), consistency is
	// measured against the final version, from the last change time.
	nChanges := spec.Params.Changes
	if nChanges < 1 {
		nChanges = 1
	}
	changeTimes := make([]sim.Time, nChanges)
	for i := range changeTimes {
		changeTimes[i] = k.UniformTime(spec.Params.ChangeMin, spec.Params.ChangeMax)
	}
	sort.Slice(changeTimes, func(i, j int) bool { return changeTimes[i] < changeTimes[j] })
	sc.SetTargetVersion(uint64(1 + nChanges))
	for _, at := range changeTimes {
		k.At(at, sc.fireChange)
	}
	changeAt := changeTimes[len(changeTimes)-1]

	deadline := sim.Time(spec.Params.RunDuration)
	k.Run(deadline)

	res := metrics.RunResult{
		Lambda:   spec.Lambda,
		Seed:     spec.Seed,
		ChangeAt: changeAt,
		Deadline: deadline,
	}
	allDone := changeAt
	allReached := true
	for _, uid := range sc.UserIDs {
		at, ok := sc.ReachedAt(uid)
		excluded := !ok && sc.AbsentAtEnd(uid)
		res.Users = append(res.Users, metrics.UserOutcome{User: uid, Reached: ok, At: at, Excluded: excluded})
		if excluded {
			continue // churned out: no U(i,j) sample, no effort-window claim
		}
		if !ok {
			allReached = false
		} else if at > allDone {
			allDone = at
		}
	}
	// Permanently departed Users whose slots were recycled: outcomes were
	// frozen at departure, same exclusion rule as live absent Users.
	for _, o := range sc.RetiredOutcomes() {
		res.Users = append(res.Users, o)
		if o.Excluded {
			continue
		}
		if o.At > allDone {
			allDone = o.At
		}
	}
	winEnd := deadline
	if allReached {
		winEnd = allDone + spec.Params.EffortPad
		if winEnd > deadline {
			winEnd = deadline
		}
	}
	c := sc.Net.Counters()
	res.Effort = c.CountedInWindow(changeAt, winEnd)
	res.TotalDiscoverySends = c.DiscoverySends
	res.TotalTransport = c.TransportFrames
	if reg != nil {
		reg.Gauge("sd_kernel_events", "shard", "0").Set(int64(k.Fired()))
		reg.Gauge("sd_kernel_pending", "shard", "0").Set(int64(k.Pending()))
	}
	if ws != nil {
		ws.adopt(sc)
	}
	return res, sc
}

// SeedFor derives the deterministic seed of one run.
func SeedFor(base int64, sys System, lambdaIdx, runIdx int) int64 {
	return base + int64(sys)*1_000_003 + int64(lambdaIdx)*10_007 + int64(runIdx)
}
