package experiment

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Regression: an explicit FailureWindowStart of 0 must survive
// withDefaults — the old code pattern-matched "zero field = unset" and
// silently replaced it with the paper's 100s default.
func TestParamsExplicitZeroFailureWindow(t *testing.T) {
	p := Params{
		FailureWindowSet:   true,
		FailureWindowStart: 0,
		FailureWindowEnd:   2000 * sim.Second,
	}.withDefaults()
	if p.FailureWindowStart != 0 {
		t.Errorf("explicit zero window start overwritten with %v", p.FailureWindowStart)
	}
	if p.FailureWindowEnd != 2000*sim.Second {
		t.Errorf("explicit window end overwritten with %v", p.FailureWindowEnd)
	}
	// Without the flag the legacy fill stays: zero means the default.
	d := Params{}.withDefaults()
	if d.FailureWindowStart != 100*sim.Second || d.FailureWindowEnd != 5400*sim.Second {
		t.Errorf("legacy default fill broken: [%v, %v]", d.FailureWindowStart, d.FailureWindowEnd)
	}
}

// A flash crowd must spawn exactly its Users, spread over its window,
// all measured like ordinary arrivals — and a run without crowds must
// replay bit-identically to one with an empty crowd list.
func TestFlashCrowdArrivals(t *testing.T) {
	params := DefaultParams()
	params.Runs = 1
	base := RunSpec{System: UPnP, Lambda: 0, Seed: 3, Params: params}

	plain := Run(base)
	withEmpty := base
	withEmpty.Params.FlashCrowds = []FlashCrowd{}
	if got := Run(withEmpty); got.Effort != plain.Effort || len(got.Users) != len(plain.Users) {
		t.Fatalf("empty flash-crowd list perturbed the run: %+v vs %+v", got, plain)
	}

	crowd := base
	crowd.Params.FlashCrowds = []FlashCrowd{
		{At: 1000 * sim.Second, Users: 12, Window: 30 * sim.Second},
	}
	res := Run(crowd)
	if want := len(plain.Users) + 12; len(res.Users) != want {
		t.Fatalf("flash crowd of 12 produced %d user outcomes, want %d", len(res.Users), want)
	}
	reached := 0
	for _, u := range res.Users {
		if u.Reached {
			reached++
		}
	}
	// No failures, no loss: the whole population (initial + crowd) must
	// discover and reach consistency.
	if reached != len(res.Users) {
		t.Errorf("only %d/%d users reached consistency under a failure-free flash crowd", reached, len(res.Users))
	}
}

// Rack planning: contiguous blocks, all-interface outages inside the
// window, deterministic per seed, and disabled configs draw nothing.
func TestPlanRackFailures(t *testing.T) {
	mkNodes := func(n int) []netsim.NodeID {
		ids := make([]netsim.NodeID, n)
		for i := range ids {
			ids[i] = netsim.NodeID(i)
		}
		return ids
	}
	cfg := netsim.RackPlanConfig{
		Racks: 4, Fail: 2,
		WindowStart: 500 * sim.Second, WindowEnd: 3000 * sim.Second,
		Duration: 600 * sim.Second, Spread: 5 * sim.Second,
	}
	k := sim.New(42)
	plan := netsim.PlanRackFailures(k, mkNodes(20), cfg)
	if len(plan) != 10 {
		t.Fatalf("2 of 4 racks over 20 nodes should fail 10 nodes, got %d", len(plan))
	}
	for _, f := range plan {
		if f.Mode != netsim.FailBoth {
			t.Errorf("rack member %d failed %v, want both interfaces", f.Node, f.Mode)
		}
		if f.Start < cfg.WindowStart || f.Start >= cfg.WindowEnd+sim.Time(cfg.Spread) {
			t.Errorf("rack member %d fails at %v, outside the window", f.Node, f.Start)
		}
		if f.Duration != cfg.Duration {
			t.Errorf("rack member %d outage %v, want %v", f.Node, f.Duration, cfg.Duration)
		}
	}
	// Same seed ⇒ same plan; different seed ⇒ (almost surely) different.
	again := netsim.PlanRackFailures(sim.New(42), mkNodes(20), cfg)
	for i := range plan {
		if plan[i] != again[i] {
			t.Fatalf("rack plan not deterministic at %d: %v vs %v", i, plan[i], again[i])
		}
	}
	if netsim.PlanRackFailures(sim.New(1), mkNodes(20), netsim.RackPlanConfig{}) != nil {
		t.Error("disabled rack plan produced failures")
	}
	if err := (netsim.RackPlanConfig{Racks: 2, Fail: 3, Duration: sim.Second}).Validate(); err == nil {
		t.Error("failing more racks than exist validated")
	}
}

// A rack failure hitting the infrastructure rack mid-run must not wedge
// the run: the outage heals, the protocols recover, the run completes.
func TestRackFailureRunCompletes(t *testing.T) {
	params := DefaultParams()
	params.RackFailures = netsim.RackPlanConfig{
		Racks: 2, Fail: 1,
		WindowStart: 500 * sim.Second, WindowEnd: 1500 * sim.Second,
		Duration: 300 * sim.Second, Spread: 2 * sim.Second,
	}
	for _, sys := range Systems() {
		res := Run(RunSpec{System: sys, Lambda: 0, Seed: 9, Params: params})
		if len(res.Users) == 0 {
			t.Errorf("%v: rack-failure run produced no user outcomes", sys)
		}
	}
}
