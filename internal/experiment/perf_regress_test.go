package experiment

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"testing"

	"repro/internal/sim"
)

// sweepFingerprint serializes everything observable about a SweepResult
// in a deterministic order (maps are walked in Systems order, raw runs
// in slot order) and hashes it, so two sweeps can be compared
// byte-for-byte without retaining megabytes of output.
func sweepFingerprint(res SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "m=%d\n", res.M)
	for _, sys := range res.Systems {
		fmt.Fprintf(&b, "%s mprime=%d curve=%#v\n", sys.Short(), res.MPrime[sys], res.Curves[sys].Points)
		for li, runs := range res.Raw[sys] {
			for r, rr := range runs {
				fmt.Fprintf(&b, "%s li=%d r=%d change=%d effort=%d users=%#v\n",
					sys.Short(), li, r, rr.ChangeAt, rr.Effort, rr.Users)
			}
		}
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// pr2SweepGolden freezes the N=100 churn sweep under the PR-2 pooled
// kernel, splitmix RNG and batched fan-out. The determinism tests prove
// a sweep equals itself across worker counts; this constant additionally
// pins the result across future refactors of the kernel and network fast
// path — an event-ordering or RNG regression shows up as a mismatch
// here. Regenerate deliberately (go test -run SweepFingerprint -v prints
// the new value) only when a PR intentionally changes the event
// schedule or random stream, and say so in that PR's notes.
const pr2SweepGolden = "495a2f8bc53b42f2"

// The PR-2 acceptance regression: a 100-User FRODO sweep with churn is
// byte-identical across worker counts and matches the recorded golden
// fingerprint of the pooled kernel.
func TestSweepFingerprintN100Churn(t *testing.T) {
	p := DefaultParams()
	p.Runs = 2
	p.Lambdas = []float64{0, 0.3}
	p.Topology = Topology{Users: 100}
	p.Churn = Churn{Departures: 0.4, MeanAbsence: 600 * sim.Second, Arrivals: 5}
	cfg := func(w int) SweepConfig {
		return SweepConfig{Systems: []System{Frodo2P}, Params: p, Workers: w, RetainRaw: true}
	}
	serial := sweepFingerprint(Sweep(cfg(1)))
	parallel := sweepFingerprint(Sweep(cfg(runtime.GOMAXPROCS(0))))
	if serial != parallel {
		t.Fatalf("sweep fingerprint differs across worker counts: %s vs %s", serial, parallel)
	}
	t.Logf("sweep fingerprint: %s", serial)
	if serial != pr2SweepGolden {
		t.Errorf("sweep fingerprint %s does not match golden %s — the event schedule or random stream changed; if intentional, update pr2SweepGolden", serial, pr2SweepGolden)
	}
}
