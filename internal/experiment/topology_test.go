package experiment

import (
	"fmt"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// The zero-value topology must normalize to the paper's Table 4 design.
func TestTopologyZeroValueIsPaperDesign(t *testing.T) {
	for _, sys := range Systems() {
		topo := Topology{}.normalized(sys, 5)
		if topo.Users != 5 || topo.Managers != 1 || topo.Services != 0 {
			t.Errorf("%v: normalized = %+v", sys, topo)
		}
		if topo.Registries != DefaultRegistries(sys) {
			t.Errorf("%v: registries = %d, want %d", sys, topo.Registries, DefaultRegistries(sys))
		}
		if topo.BootSpacing != sim.Second || topo.UserBootSpacing != sim.Second || topo.BootJitter != sim.Second {
			t.Errorf("%v: boot stagger = %+v", sys, topo)
		}
	}
	// Huge populations densify the User boot schedule automatically.
	big := Topology{Users: 1200}.normalized(Frodo2P, 5)
	if big.UserBootSpacing >= sim.Second {
		t.Errorf("1200 users: spacing %v did not shrink", big.UserBootSpacing)
	}
	if got := big.UserBootSpacing * 1200; got > 60*sim.Second {
		t.Errorf("1200 users: boots span %v, want ≤ 60s", got)
	}
}

// Regression for the old rune-arithmetic userName: names must be
// readable and unique well past i=9 (string(rune('1'+i)) yielded
// "User:", "User;"… garbage there).
func TestUserNamesAtScale(t *testing.T) {
	if got := userName(9); got != "User10" {
		t.Fatalf("userName(9) = %q, want User10", got)
	}
	if got := userName(49); got != "User50" {
		t.Fatalf("userName(49) = %q, want User50", got)
	}
	k := sim.New(1)
	sc := Build(Frodo2P, k, 50, Options{})
	seen := map[string]bool{}
	for _, uid := range sc.UserIDs {
		name := sc.Net.Node(uid).Name
		if seen[name] {
			t.Fatalf("duplicate user name %q at N=50", name)
		}
		seen[name] = true
	}
	if !seen["User50"] {
		t.Error("User50 missing from a 50-user build")
	}
}

// Background Managers must not disturb the measured metrics: the printer
// stays on Manager 0 and the recorder ignores background services.
func TestBackgroundManagersKeepMetricsClean(t *testing.T) {
	for _, sys := range Systems() {
		p := DefaultParams()
		p.Topology = Topology{Users: 5, Managers: 3, Services: 2}
		res := Run(RunSpec{System: sys, Lambda: 0, Seed: 3, Params: p})
		for _, u := range res.Users {
			if !u.Reached {
				t.Errorf("%v: user %d not consistent at λ=0 with background managers", sys, u.User)
			}
		}
	}
}

// SeedFor must be collision-free across the paper's full default grid.
func TestSeedForCollisionFree(t *testing.T) {
	p := DefaultParams()
	seen := map[int64]string{}
	for _, sys := range Systems() {
		for li := range p.Lambdas {
			for r := 0; r < p.Runs; r++ {
				s := SeedFor(p.BaseSeed, sys, li, r)
				key := fmt.Sprintf("%v/%d/%d", sys, li, r)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed %d collides: %s vs %s", s, key, prev)
				}
				seen[s] = key
			}
		}
	}
}

// Sweep curves must be byte-identical at any worker count, including
// under a generalized topology with churn: per-cell summaries are
// slotted by run index, so float folds happen in one fixed order.
func TestSweepByteIdenticalAcrossWorkers(t *testing.T) {
	p := fastParams(3, []float64{0, 0.3})
	p.Topology = Topology{Users: 20, Managers: 2}
	p.Churn = Churn{Departures: 0.5, MeanAbsence: 300 * sim.Second, Arrivals: 3}
	cfg := func(w int) SweepConfig {
		return SweepConfig{Systems: []System{UPnP, Frodo2P}, Params: p, Workers: w}
	}
	a := Sweep(cfg(1))
	b := Sweep(cfg(runtime.GOMAXPROCS(0)))
	sa := fmt.Sprintf("%#v %d %v", a.Curves, a.M, a.MPrime)
	sb := fmt.Sprintf("%#v %d %v", b.Curves, b.M, b.MPrime)
	if sa != sb {
		t.Errorf("curves differ across worker counts:\n%s\nvs\n%s", sa, sb)
	}
}

// Raw run results are retained only on request.
func TestSweepRawIsOptIn(t *testing.T) {
	p := fastParams(2, []float64{0})
	lean := Sweep(SweepConfig{Systems: []System{UPnP}, Params: p})
	if lean.Raw != nil {
		t.Error("Raw retained without RetainRaw")
	}
	if lean.Cells[UPnP][0].Runs() != 2 {
		t.Errorf("cell holds %d runs, want 2", lean.Cells[UPnP][0].Runs())
	}
	full := Sweep(SweepConfig{Systems: []System{UPnP}, Params: p, RetainRaw: true})
	if len(full.Raw[UPnP][0]) != 2 {
		t.Fatalf("RetainRaw kept %d runs", len(full.Raw[UPnP][0]))
	}
	// Both paths aggregate identically.
	if fmt.Sprintf("%#v", lean.Curves) != fmt.Sprintf("%#v", full.Curves) {
		t.Error("RetainRaw changed the curves")
	}
}

// A sweep given only Topology/Churn (no Runs etc.) must default the
// unset design fields without discarding the scenario shape.
func TestSweepPreservesTopologyWhenDefaulting(t *testing.T) {
	res := Sweep(SweepConfig{
		Systems: []System{UPnP},
		Params: Params{
			Runs:     1,
			Lambdas:  []float64{0},
			Topology: Topology{Users: 9},
		},
	})
	if res.Params.RunDuration != DefaultParams().RunDuration {
		t.Errorf("RunDuration not defaulted: %v", res.Params.RunDuration)
	}
	if res.Params.Topology.Users != 9 {
		t.Fatalf("Topology discarded by defaulting: %+v", res.Params.Topology)
	}
	if got := res.Cells[UPnP][0].Runs(); got != 1 {
		t.Fatalf("cell runs = %d", got)
	}
	// The run really had 9 users: check via a retained-raw repeat.
	raw := Sweep(SweepConfig{Systems: []System{UPnP},
		Params:    Params{Runs: 1, Lambdas: []float64{0}, Topology: Topology{Users: 9}},
		RetainRaw: true})
	if n := len(raw.Raw[UPnP][0][0].Users); n != 9 {
		t.Errorf("run built %d users, want 9", n)
	}
}

// Property: under zero loss and λ=0 every generated topology reaches
// full consistency — the Configuration Update Principles hold across the
// whole scenario space, not just the paper's point design.
func TestQuickGeneratedTopologiesConverge(t *testing.T) {
	f := func(seedRaw uint16, usersRaw, mgrsRaw, regsRaw, svcRaw, sysRaw uint8) bool {
		sys := Systems()[int(sysRaw)%len(Systems())]
		p := DefaultParams()
		p.RunDuration = 1800 * sim.Second
		p.ChangeMax = 600 * sim.Second
		p.Topology = Topology{
			Users:      1 + int(usersRaw)%12,
			Managers:   1 + int(mgrsRaw)%3,
			Registries: int(regsRaw) % 3, // 0 = system default
			Services:   int(svcRaw) % 3,
		}
		res := Run(RunSpec{System: sys, Lambda: 0, Seed: int64(seedRaw) + 1, Params: p})
		if len(res.Users) != p.Topology.Users {
			return false
		}
		for _, u := range res.Users {
			if !u.Reached || u.Excluded {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: churned-out Users are excluded from the U(i,j) samples —
// exactly those absent at the deadline without having reached
// consistency — and excluded Users contribute no responsiveness sample.
// Permanently departed Users whose node slots were retired and recycled
// appear after the live Users, with their outcome frozen at departure:
// reached (keeps its sample) or excluded, never both and never neither.
func TestQuickChurnedOutUsersExcluded(t *testing.T) {
	f := func(seedRaw uint16, depRaw uint8) bool {
		p := DefaultParams()
		p.RunDuration = 1800 * sim.Second
		p.ChangeMax = 600 * sim.Second
		p.Topology = Topology{Users: 8}
		p.Churn = Churn{Departures: 0.5 + float64(depRaw%4)} // permanent departures
		res, sc := run(RunSpec{System: Frodo2P, Lambda: 0, Seed: int64(seedRaw) + 1, Params: p})
		retired := sc.RetiredOutcomes()
		live := res.Users[:len(res.Users)-len(retired)]
		nonExcluded := 0
		for _, u := range live {
			wantExcluded := sc.AbsentAtEnd(u.User) && !u.Reached
			if u.Excluded != wantExcluded {
				return false
			}
			if !u.Excluded {
				nonExcluded++
			}
		}
		for _, u := range res.Users[len(live):] {
			if u.Excluded == u.Reached { // frozen outcome: exactly one holds
				return false
			}
			if !u.Excluded {
				nonExcluded++
			}
		}
		return len(res.Responsivenesses()) == nonExcluded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Churned Users that rejoin re-discover the service on their own: with a
// bounded absence every User still ends the run consistent or excluded,
// and high churn plus rejoining must not deadlock the sweep.
func TestChurnRejoinRediscovers(t *testing.T) {
	p := DefaultParams()
	p.Topology = Topology{Users: 10}
	p.Churn = Churn{Departures: 1.5, MeanAbsence: 400 * sim.Second, Arrivals: 5}
	res := Run(RunSpec{System: Frodo2P, Lambda: 0, Seed: 7, Params: p})
	if len(res.Users) <= 10 {
		t.Errorf("no arrivals materialized: %d users", len(res.Users))
	}
	reached := 0
	for _, u := range res.Users {
		if u.Reached {
			reached++
		}
	}
	if reached < 8 {
		t.Errorf("only %d/%d churned users regained consistency", reached, len(res.Users))
	}
}

// The acceptance scenario: a 1000-User FRODO run with churn is
// deterministic — same seed, identical metrics at any worker count.
func TestScale1000UserFrodoChurnDeterministic(t *testing.T) {
	p := DefaultParams()
	p.Runs = 1
	p.Lambdas = []float64{0.2}
	p.Topology = Topology{Users: 1000}
	p.Churn = Churn{Departures: 0.3, MeanAbsence: 600 * sim.Second, Arrivals: 50}
	cfg := func(w int) SweepConfig {
		return SweepConfig{Systems: []System{Frodo2P}, Params: p, Workers: w}
	}
	a := Sweep(cfg(1))
	b := Sweep(cfg(runtime.GOMAXPROCS(0)))
	sa := fmt.Sprintf("%#v", a.Curves[Frodo2P])
	sb := fmt.Sprintf("%#v", b.Curves[Frodo2P])
	if sa != sb {
		t.Errorf("1000-user churn sweep diverged across worker counts:\n%s\nvs\n%s", sa, sb)
	}
	if pt := a.Curves[Frodo2P].Points[0]; pt.Effectiveness < 0.5 {
		t.Errorf("effectiveness %v at λ=0.2 with churn: scenario collapsed", pt.Effectiveness)
	}
}

// Validate must reject flag mistakes that normalized() silently papers
// over, and accept every zero-as-default spec.
func TestTopologyValidate(t *testing.T) {
	valid := []Topology{
		{},
		{Users: 100, Managers: 3, Registries: 2, Services: 2},
		{Services: 0, Managers: 1},
	}
	for _, topo := range valid {
		if err := topo.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v; want nil", topo, err)
		}
	}
	invalid := []Topology{
		{Users: -1},
		{Managers: -2},
		{Registries: -1},
		{Services: -3},
		{Services: 1},              // no background manager to host it
		{Managers: 3, Services: 3}, // one more type than background managers
		{BootSpacing: -1},
	}
	for _, topo := range invalid {
		if err := topo.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil; want error", topo)
		}
	}
}
