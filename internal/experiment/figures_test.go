package experiment

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func miniSweep(t *testing.T) SweepResult {
	t.Helper()
	return Sweep(SweepConfig{
		Systems: Systems(),
		Params:  fastParams(2, []float64{0, 0.5}),
		Workers: 4,
	})
}

func TestChartRendersAllSystems(t *testing.T) {
	res := miniSweep(t)
	for _, m := range []Metric{MetricEffectiveness, MetricResponsiveness, MetricDegradation} {
		out := Chart(res, m)
		if !strings.Contains(out, m.String()) {
			t.Errorf("chart missing title for %v", m)
		}
		for _, sys := range Systems() {
			if !strings.Contains(out, sys.String()) {
				t.Errorf("chart legend missing %v", sys)
			}
		}
	}
}

func TestFigure7TableShape(t *testing.T) {
	p := fastParams(2, []float64{0, 0.5})
	with, without := Figure7Sweep(p, 4, nil)
	tab := Figure7(with, without)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Header) != 5 {
		t.Fatalf("header = %v", tab.Header)
	}
}

func TestAverageWindowShrinksWithHealth(t *testing.T) {
	res := miniSweep(t)
	for _, sys := range Systems() {
		w := AverageWindow(res, sys)
		if len(w) != 2 {
			t.Fatalf("%v: %d windows", sys, len(w))
		}
		// λ=0 recovery completes within a second of the change.
		if w[0] > 2*sim.Second {
			t.Errorf("%v: zero-failure window %v, want tiny", sys, w[0])
		}
		if w[1] <= w[0] {
			t.Errorf("%v: window did not grow with failures: %v vs %v", sys, w[1], w[0])
		}
	}
}

func TestTopologyMatchesBuild(t *testing.T) {
	for _, sys := range Systems() {
		regs, mgr, firstUser := PaperLayout(sys)
		k := sim.New(1)
		sc := Build(sys, k, 5, Options{})
		if sc.ManagerID != mgr {
			t.Errorf("%v: ManagerID %d, Topology says %d", sys, sc.ManagerID, mgr)
		}
		if len(sc.UserIDs) == 0 || sc.UserIDs[0] != firstUser {
			t.Errorf("%v: first user %v, Topology says %d", sys, sc.UserIDs, firstUser)
		}
		for _, r := range regs {
			if int(r) >= sc.Net.Nodes() {
				t.Errorf("%v: registry id %d out of range", sys, r)
			}
		}
	}
}

func TestRunLoggedAnnotations(t *testing.T) {
	_, log := RunLogged(RunSpec{System: Frodo2P, Lambda: 0.2, Seed: 3,
		Params: DefaultParams()}, false)
	joined := strings.Join(log, "\n")
	for _, want := range []string{"service changed at", "update effort"} {
		if !strings.Contains(joined, want) {
			t.Errorf("log missing %q", want)
		}
	}
}

// The adversarial figure compares both loss models at equal average rate
// for every system, and its values are probabilities.
func TestFigureAdversarialShape(t *testing.T) {
	p := DefaultParams()
	p.Runs = 1
	tab := FigureAdversarial(p, 0, nil)
	if len(tab.Rows) != len(AdversarialLossRates) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(AdversarialLossRates))
	}
	wantCols := 1 + 2*len(Systems())
	if len(tab.Header) != wantCols {
		t.Fatalf("header = %v, want %d columns", tab.Header, wantCols)
	}
	for _, row := range tab.Rows {
		if len(row) != wantCols {
			t.Fatalf("row %v has %d columns, want %d", row, len(row), wantCols)
		}
		for _, cell := range row[1:] {
			var f float64
			if _, err := fmt.Sscanf(cell, "%f", &f); err != nil || f < 0 || f > 1 {
				t.Fatalf("cell %q is not a probability", cell)
			}
		}
	}
}

// Partitions scheduled through Params isolate the bisected sides for the
// window: a split across the change leaves side-B users stale during the
// partition and recovery resumes after the heal.
func TestParamsPartitionsAffectRun(t *testing.T) {
	p := DefaultParams()
	p.ChangeMin, p.ChangeMax = 2000*sim.Second, 2000*sim.Second
	base := Run(RunSpec{System: UPnP, Lambda: 0, Seed: 2, Params: p})

	p.Partitions = []netsim.Partition{
		{Start: 1900 * sim.Second, Duration: 2000 * sim.Second, Bisect: true},
	}
	split := Run(RunSpec{System: UPnP, Lambda: 0, Seed: 2, Params: p})
	var delayed int
	for i := range split.Users {
		if split.Users[i].Reached && base.Users[i].Reached && split.Users[i].At > base.Users[i].At {
			delayed++
		}
	}
	if delayed == 0 {
		t.Error("partition across the change delayed no user's consistency")
	}
}
