package experiment

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func miniSweep(t *testing.T) SweepResult {
	t.Helper()
	return Sweep(SweepConfig{
		Systems: Systems(),
		Params:  fastParams(2, []float64{0, 0.5}),
		Workers: 4,
	})
}

func TestChartRendersAllSystems(t *testing.T) {
	res := miniSweep(t)
	for _, m := range []Metric{MetricEffectiveness, MetricResponsiveness, MetricDegradation} {
		out := Chart(res, m)
		if !strings.Contains(out, m.String()) {
			t.Errorf("chart missing title for %v", m)
		}
		for _, sys := range Systems() {
			if !strings.Contains(out, sys.String()) {
				t.Errorf("chart legend missing %v", sys)
			}
		}
	}
}

func TestFigure7TableShape(t *testing.T) {
	p := fastParams(2, []float64{0, 0.5})
	with, without := Figure7Sweep(p, 4, nil)
	tab := Figure7(with, without)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Header) != 5 {
		t.Fatalf("header = %v", tab.Header)
	}
}

func TestAverageWindowShrinksWithHealth(t *testing.T) {
	res := miniSweep(t)
	for _, sys := range Systems() {
		w := AverageWindow(res, sys)
		if len(w) != 2 {
			t.Fatalf("%v: %d windows", sys, len(w))
		}
		// λ=0 recovery completes within a second of the change.
		if w[0] > 2*sim.Second {
			t.Errorf("%v: zero-failure window %v, want tiny", sys, w[0])
		}
		if w[1] <= w[0] {
			t.Errorf("%v: window did not grow with failures: %v vs %v", sys, w[1], w[0])
		}
	}
}

func TestTopologyMatchesBuild(t *testing.T) {
	for _, sys := range Systems() {
		regs, mgr, firstUser := PaperLayout(sys)
		k := sim.New(1)
		sc := Build(sys, k, 5, Options{})
		if sc.ManagerID != mgr {
			t.Errorf("%v: ManagerID %d, Topology says %d", sys, sc.ManagerID, mgr)
		}
		if len(sc.UserIDs) == 0 || sc.UserIDs[0] != firstUser {
			t.Errorf("%v: first user %v, Topology says %d", sys, sc.UserIDs, firstUser)
		}
		for _, r := range regs {
			if int(r) >= sc.Net.Nodes() {
				t.Errorf("%v: registry id %d out of range", sys, r)
			}
		}
	}
}

func TestRunLoggedAnnotations(t *testing.T) {
	_, log := RunLogged(RunSpec{System: Frodo2P, Lambda: 0.2, Seed: 3,
		Params: DefaultParams()}, false)
	joined := strings.Join(log, "\n")
	for _, want := range []string{"service changed at", "update effort"} {
		if !strings.Contains(joined, want) {
			t.Errorf("log missing %q", want)
		}
	}
}
