package experiment

import (
	"reflect"
	"testing"

	"repro/internal/frodo"
	"repro/internal/metrics"
	"repro/internal/sim"
)

type frodoConfigAlias = frodo.Config

// TestWorkspaceReuseMatchesFreshBuild is the correctness contract of
// scenario rearming: running a spec on a workspace whose cached scenario
// is reused (after an interleaved different-seed run that dirtied every
// table, timer and node slot) must produce bit-identical results to a
// cold run on a fresh workspace — same outcomes, same effort, same
// message counters. Churn is on so retirement, slot recycling and
// mid-run arrivals all happen between the compared runs.
func TestWorkspaceReuseMatchesFreshBuild(t *testing.T) {
	p := DefaultParams()
	p.Topology = Topology{Users: 25}
	p.Churn = Churn{Departures: 0.4, MeanAbsence: 600 * sim.Second, Arrivals: 3}
	for _, sys := range Systems() {
		t.Run(sys.Short(), func(t *testing.T) {
			spec := func(seed int64) RunSpec {
				return RunSpec{System: sys, Lambda: 0.3, Seed: seed, Params: p}
			}
			cold := func(seed int64) (metrics.RunResult, int, int) {
				ws := NewWorkspace()
				res := RunInto(ws, spec(seed))
				c := ws.nw.Counters()
				return res, c.Sends, c.Drops
			}
			coldRes, coldSends, coldDrops := cold(7)

			// Warm path: same workspace runs seed 99 first (building the
			// scenario and then thoroughly dirtying it), then seed 7 again —
			// this second run takes the rearm path.
			ws := NewWorkspace()
			RunInto(ws, spec(99))
			if ws.scen == nil {
				t.Fatal("workspace did not cache the scenario")
			}
			sc := ws.scen
			warmRes := RunInto(ws, spec(7))
			if ws.scen != sc {
				t.Fatal("second run rebuilt instead of rearming")
			}

			if !reflect.DeepEqual(coldRes, warmRes) {
				t.Errorf("rearmed run differs from cold run:\ncold: %+v\nwarm: %+v", coldRes, warmRes)
			}
			if c := ws.nw.Counters(); c.Sends != coldSends || c.Drops != coldDrops {
				t.Errorf("rearmed run wire traffic differs: sends %d vs %d, drops %d vs %d",
					c.Sends, coldSends, c.Drops, coldDrops)
			}
		})
	}
}

// TestWorkspaceRebuildsOnShapeChange pins the cache key: a different
// topology, system or loss model must rebuild, never rearm.
func TestWorkspaceRebuildsOnShapeChange(t *testing.T) {
	ws := NewWorkspace()
	p := DefaultParams()
	RunInto(ws, RunSpec{System: UPnP, Lambda: 0, Seed: 1, Params: p})
	first := ws.scen

	p2 := p
	p2.Topology = Topology{Users: 9}
	RunInto(ws, RunSpec{System: UPnP, Lambda: 0, Seed: 1, Params: p2})
	if ws.scen == first {
		t.Error("topology change did not rebuild the scenario")
	}
	second := ws.scen

	RunInto(ws, RunSpec{System: Jini1, Lambda: 0, Seed: 1, Params: p2})
	if ws.scen == second {
		t.Error("system change did not rebuild the scenario")
	}

	third := ws.scen
	RunInto(ws, RunSpec{System: Jini1, Lambda: 0, Seed: 2, Params: p2})
	if ws.scen != third {
		t.Error("same-shape run should have rearmed the cached scenario")
	}
}

// TestWorkspaceMutatorOptionsNeedTrust pins the safety rule for option
// hooks: two option sets with mutator funcs are indistinguishable by
// value, so an untrusted workspace must rebuild rather than risk reusing
// a scenario built under different mutations; TrustOptions (the sweep's
// promise) enables reuse.
func TestWorkspaceMutatorOptionsNeedTrust(t *testing.T) {
	p := DefaultParams()
	// A non-nil mutator with identity behaviour: reuse must still be
	// refused without trust, because mutator funcs carry no comparable
	// identity.
	opts := Options{Frodo: func(c *frodoConfigAlias) {}}
	spec := RunSpec{System: Frodo2P, Lambda: 0, Seed: 1, Params: p, Opts: opts}

	ws := NewWorkspace()
	RunInto(ws, spec)
	first := ws.scen
	RunInto(ws, spec)
	if ws.scen == first && first != nil {
		t.Error("untrusted workspace reused a mutator-built scenario")
	}

	trusted := NewWorkspace()
	trusted.TrustOptions()
	RunInto(trusted, spec)
	tfirst := trusted.scen
	RunInto(trusted, spec)
	if trusted.scen != tfirst {
		t.Error("trusted workspace rebuilt instead of rearming")
	}
}
