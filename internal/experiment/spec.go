package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ScenarioSpec is the declarative, JSON-serializable form of one
// scenario: topology, failure rate, churn, partitions, link
// conditioning, flash crowds and rack failures, with all times in
// seconds so fixtures stay human-readable and diffable. It is the
// currency of the chaos hunter (internal/hunt): mutated specs form the
// fuzzing corpus, minimized violating specs become committed fixtures,
// and sdsweep/sdverify accept the same files, so a hunted scenario can
// be fed straight back through every tool.
//
// The zero value reproduces the paper's §5 design at λ=0. Decoding is
// strict (unknown fields are errors) and Validate reports the offending
// field by path, so a malformed fixture fails up front, not mid-run.
type ScenarioSpec struct {
	// Seed derives every random draw of the run; the spec plus the seed
	// replays the identical timeline.
	Seed int64 `json:"seed"`
	// Lambda is the interface-failure rate λ ∈ [0,1].
	Lambda float64 `json:"lambda,omitempty"`
	// DurationSec is the run length D; 0 means the paper's 5400s.
	DurationSec float64 `json:"duration_sec,omitempty"`
	// ChangeMinSec/ChangeMaxSec bound the service-change time; 0 means
	// the paper's 100s/2700s.
	ChangeMinSec float64 `json:"change_min_sec,omitempty"`
	ChangeMaxSec float64 `json:"change_max_sec,omitempty"`
	// Changes is the number of service changes; 0 means 1.
	Changes int `json:"changes,omitempty"`
	// FailureWindow bounds the λ outage activations; omitted means the
	// paper's [100s, 5400s]. Present, it is taken verbatim — including a
	// start of 0.
	FailureWindow *SpecWindow `json:"failure_window,omitempty"`
	// Topology is the scenario shape; zero fields mean system defaults.
	Topology SpecTopology `json:"topology,omitempty"`
	// Churn is the Poisson population model; zero disables it.
	Churn SpecChurn `json:"churn,omitempty"`
	// Partitions schedules transient splits.
	Partitions []SpecPartition `json:"partitions,omitempty"`
	// Link selects the adversarial link models; zero is the paper's
	// idealized network.
	Link SpecLink `json:"link,omitempty"`
	// FlashCrowds schedules arrival spikes.
	FlashCrowds []SpecFlashCrowd `json:"flash_crowds,omitempty"`
	// RackFailures adds correlated rack-level outages.
	RackFailures SpecRacks `json:"rack_failures,omitempty"`
	// Hardened runs the scenario with the full protocol-hardening layer
	// (discovery.HardenAll); hunted fixtures commit a hardened
	// counterpart that must replay clean.
	Hardened bool `json:"hardened,omitempty"`
	// Shards partitions the run across this many parallel kernel/netsim
	// pairs (FRODO systems only); 0 or 1 is the single-fabric path.
	Shards int `json:"shards,omitempty"`
	// CrossMinSec/CrossMaxSec bound the inter-shard link delay of a
	// sharded run (min is the conservative lookahead); 0 means the
	// 0.2s/0.4s defaults. Only meaningful with shards ≥ 2.
	CrossMinSec float64 `json:"cross_min_sec,omitempty"`
	CrossMaxSec float64 `json:"cross_max_sec,omitempty"`
}

// SpecWindow is a [start, end) time window in seconds.
type SpecWindow struct {
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
}

// SpecTopology mirrors Topology in spec units.
type SpecTopology struct {
	Users      int `json:"users,omitempty"`
	Managers   int `json:"managers,omitempty"`
	Registries int `json:"registries,omitempty"`
	Services   int `json:"services,omitempty"`
}

// SpecChurn mirrors Churn in spec units.
type SpecChurn struct {
	Departures     float64 `json:"departures,omitempty"`
	MeanAbsenceSec float64 `json:"mean_absence_sec,omitempty"`
	Arrivals       float64 `json:"arrivals,omitempty"`
}

// SpecPartition is one scheduled bisecting split.
type SpecPartition struct {
	StartSec    float64 `json:"start_sec"`
	DurationSec float64 `json:"duration_sec"`
}

// SpecLink selects the link-conditioning models.
type SpecLink struct {
	// BurstAvg enables Gilbert–Elliott loss at this stationary average
	// rate; BurstLen is the mean burst length in frames (min 1).
	BurstAvg float64 `json:"burst_avg,omitempty"`
	BurstLen float64 `json:"burst_len,omitempty"`
	// Loss is the i.i.d. alternative; exclusive with BurstAvg.
	Loss float64 `json:"loss,omitempty"`
	// DelayDist is uniform|lognormal|pareto ("" = uniform).
	DelayDist  string  `json:"delay_dist,omitempty"`
	DelaySigma float64 `json:"delay_sigma,omitempty"`
	DelayAlpha float64 `json:"delay_alpha,omitempty"`
	// ReorderProb/ReorderExtraSec add probabilistic out-of-order delay.
	ReorderProb     float64 `json:"reorder_prob,omitempty"`
	ReorderExtraSec float64 `json:"reorder_extra_sec,omitempty"`
}

// SpecFlashCrowd is one arrival spike.
type SpecFlashCrowd struct {
	AtSec     float64 `json:"at_sec"`
	Users     int     `json:"users"`
	WindowSec float64 `json:"window_sec,omitempty"`
}

// SpecRacks mirrors netsim.RackPlanConfig in spec units.
type SpecRacks struct {
	Racks          int     `json:"racks,omitempty"`
	Fail           int     `json:"fail,omitempty"`
	WindowStartSec float64 `json:"window_start_sec,omitempty"`
	WindowEndSec   float64 `json:"window_end_sec,omitempty"`
	DurationSec    float64 `json:"duration_sec,omitempty"`
	SpreadSec      float64 `json:"spread_sec,omitempty"`
}

func secs(s float64) sim.Time        { return sim.Time(s * float64(sim.Second)) }
func secsDur(s float64) sim.Duration { return sim.Duration(s * float64(sim.Second)) }

// ParseSpec decodes one scenario spec strictly: unknown fields are
// errors (a typo in a fixture must not silently become a default), and
// the decoded spec is validated.
func ParseSpec(r io.Reader) (*ScenarioSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s ScenarioSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (*ScenarioSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Encode renders the spec as committable indented JSON.
func (s *ScenarioSpec) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Validate checks every field and reports the first offender by path.
func (s *ScenarioSpec) Validate() error {
	if s.Lambda < 0 || s.Lambda > 1 {
		return fmt.Errorf("scenario: lambda %v out of [0,1]", s.Lambda)
	}
	if s.DurationSec < 0 {
		return fmt.Errorf("scenario: duration_sec %v must not be negative", s.DurationSec)
	}
	if s.ChangeMinSec < 0 || s.ChangeMaxSec < 0 {
		return fmt.Errorf("scenario: change_min_sec/change_max_sec must not be negative")
	}
	if s.ChangeMaxSec > 0 && s.ChangeMinSec > s.ChangeMaxSec {
		return fmt.Errorf("scenario: change_min_sec %v exceeds change_max_sec %v", s.ChangeMinSec, s.ChangeMaxSec)
	}
	if s.Changes < 0 {
		return fmt.Errorf("scenario: changes %d must not be negative", s.Changes)
	}
	if w := s.FailureWindow; w != nil {
		if w.StartSec < 0 || w.EndSec < w.StartSec {
			return fmt.Errorf("scenario: failure_window [%v, %v] invalid", w.StartSec, w.EndSec)
		}
	}
	topo := Topology{
		Users:      s.Topology.Users,
		Managers:   s.Topology.Managers,
		Registries: s.Topology.Registries,
		Services:   s.Topology.Services,
	}
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("scenario: topology: %w", err)
	}
	if c := s.Churn; c.Departures < 0 || c.MeanAbsenceSec < 0 || c.Arrivals < 0 {
		return fmt.Errorf("scenario: churn fields must not be negative")
	}
	for i, p := range s.Partitions {
		if p.StartSec < 0 {
			return fmt.Errorf("scenario: partitions[%d].start_sec %v must not be negative", i, p.StartSec)
		}
		if p.DurationSec <= 0 {
			return fmt.Errorf("scenario: partitions[%d].duration_sec %v must be positive", i, p.DurationSec)
		}
		for j, q := range s.Partitions[:i] {
			if p.StartSec < q.StartSec+q.DurationSec && q.StartSec < p.StartSec+p.DurationSec {
				return fmt.Errorf("scenario: partitions[%d] overlaps partitions[%d]", i, j)
			}
		}
	}
	if err := s.Link.validate(); err != nil {
		return err
	}
	for i, fc := range s.FlashCrowds {
		if fc.AtSec < 0 || fc.WindowSec < 0 {
			return fmt.Errorf("scenario: flash_crowds[%d] times must not be negative", i)
		}
		if fc.Users < 0 {
			return fmt.Errorf("scenario: flash_crowds[%d].users %d must not be negative", i, fc.Users)
		}
	}
	if r := s.RackFailures; r != (SpecRacks{}) {
		if r.Racks <= 0 || r.Fail <= 0 {
			return fmt.Errorf("scenario: rack_failures needs positive racks and fail, got %d/%d", r.Racks, r.Fail)
		}
		if err := s.rackConfig().Validate(); err != nil {
			return fmt.Errorf("scenario: rack_failures: %w", err)
		}
	}
	if s.Shards < 0 {
		return fmt.Errorf("scenario: shards %d must not be negative", s.Shards)
	}
	if s.CrossMinSec < 0 || s.CrossMaxSec < 0 {
		return fmt.Errorf("scenario: cross_min_sec/cross_max_sec must not be negative")
	}
	if (s.CrossMinSec > 0 || s.CrossMaxSec > 0) && s.Shards < 2 {
		return fmt.Errorf("scenario: cross_min_sec/cross_max_sec need shards ≥ 2, got %d", s.Shards)
	}
	if c := s.crossLink(); c != (netsim.CrossLink{}) {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	// The assembled options must produce a valid network configuration
	// (catches e.g. loss+burst set together).
	if err := s.Options().Validate(); err != nil {
		return fmt.Errorf("scenario: link: %w", err)
	}
	return nil
}

// crossLink assembles the inter-shard link the spec describes; an unset
// field inherits its DefaultCrossLink half, the all-zero spec stays the
// zero value (meaning "defaults" downstream).
func (s *ScenarioSpec) crossLink() netsim.CrossLink {
	if s.CrossMinSec == 0 && s.CrossMaxSec == 0 {
		return netsim.CrossLink{}
	}
	c := netsim.DefaultCrossLink()
	if s.CrossMinSec > 0 {
		c.MinDelay = secsDur(s.CrossMinSec)
	}
	if s.CrossMaxSec > 0 {
		c.MaxDelay = secsDur(s.CrossMaxSec)
	}
	return c
}

func (l SpecLink) validate() error {
	if l.BurstAvg < 0 || l.BurstAvg >= 1 {
		return fmt.Errorf("scenario: link.burst_avg %v out of [0,1)", l.BurstAvg)
	}
	if l.BurstAvg > 0 {
		ln := l.BurstLen
		if ln == 0 {
			ln = 1
		}
		if ln < 1 {
			return fmt.Errorf("scenario: link.burst_len %v must be ≥ 1", l.BurstLen)
		}
		if l.BurstAvg/(1-l.BurstAvg) > ln {
			return fmt.Errorf("scenario: link.burst_avg %v unreachable with burst_len %v (needs ≥ %.3f)",
				l.BurstAvg, ln, l.BurstAvg/(1-l.BurstAvg))
		}
		if l.Loss > 0 {
			return fmt.Errorf("scenario: link.loss and link.burst_avg are alternatives; set one")
		}
	}
	if l.Loss < 0 || l.Loss > 1 {
		return fmt.Errorf("scenario: link.loss %v out of [0,1]", l.Loss)
	}
	if _, err := netsim.ParseDelayDist(l.DelayDist); err != nil {
		return fmt.Errorf("scenario: link.delay_dist: %w", err)
	}
	if l.DelaySigma < 0 || l.DelayAlpha < 0 {
		return fmt.Errorf("scenario: link.delay_sigma/delay_alpha must not be negative")
	}
	if l.ReorderProb < 0 || l.ReorderProb > 1 {
		return fmt.Errorf("scenario: link.reorder_prob %v out of [0,1]", l.ReorderProb)
	}
	if l.ReorderExtraSec < 0 {
		return fmt.Errorf("scenario: link.reorder_extra_sec %v must not be negative", l.ReorderExtraSec)
	}
	return nil
}

func (s *ScenarioSpec) rackConfig() netsim.RackPlanConfig {
	r := s.RackFailures
	return netsim.RackPlanConfig{
		Racks:       r.Racks,
		Fail:        r.Fail,
		WindowStart: secs(r.WindowStartSec),
		WindowEnd:   secs(r.WindowEndSec),
		Duration:    secsDur(r.DurationSec),
		Spread:      secsDur(r.SpreadSec),
	}
}

// Params assembles the experiment parameters the spec describes, fully
// resolved: zero spec fields take the paper defaults here (Run, unlike
// Sweep, uses its Params verbatim). Runs is 1 and Lambdas is the single
// spec λ — a spec names one scenario, not a sweep grid.
func (s *ScenarioSpec) Params() Params {
	p := Params{
		RunDuration: secsDur(s.DurationSec),
		ChangeMin:   secs(s.ChangeMinSec),
		ChangeMax:   secs(s.ChangeMaxSec),
		Changes:     s.Changes,
		Runs:        1,
		Lambdas:     []float64{s.Lambda},
		BaseSeed:    s.Seed,
		Topology: Topology{
			Users:      s.Topology.Users,
			Managers:   s.Topology.Managers,
			Registries: s.Topology.Registries,
			Services:   s.Topology.Services,
		},
		Churn: Churn{
			Departures:  s.Churn.Departures,
			MeanAbsence: secsDur(s.Churn.MeanAbsenceSec),
			Arrivals:    s.Churn.Arrivals,
		},
		RackFailures: s.rackConfig(),
	}
	if w := s.FailureWindow; w != nil {
		p.FailureWindowSet = true
		p.FailureWindowStart = secs(w.StartSec)
		p.FailureWindowEnd = secs(w.EndSec)
	}
	for _, sp := range s.Partitions {
		p.Partitions = append(p.Partitions, netsim.Partition{
			Start:    secs(sp.StartSec),
			Duration: secsDur(sp.DurationSec),
			Bisect:   true,
		})
	}
	for _, fc := range s.FlashCrowds {
		p.FlashCrowds = append(p.FlashCrowds, FlashCrowd{
			At:     secs(fc.AtSec),
			Users:  fc.Users,
			Window: secsDur(fc.WindowSec),
		})
	}
	return p.withDefaults()
}

// Options assembles the link-conditioning options the spec describes.
func (s *ScenarioSpec) Options() Options {
	var link netsim.LinkConfig
	if s.Link.BurstAvg > 0 {
		ln := s.Link.BurstLen
		if ln < 1 {
			ln = 1
		}
		link.Burst = netsim.BurstForAverage(s.Link.BurstAvg, ln)
	}
	dist, _ := netsim.ParseDelayDist(s.Link.DelayDist)
	link.Delay = netsim.DelayConfig{Dist: dist, Sigma: s.Link.DelaySigma, Alpha: s.Link.DelayAlpha}
	link.Reorder = netsim.ReorderConfig{Prob: s.Link.ReorderProb, Extra: secsDur(s.Link.ReorderExtraSec)}
	opts := Options{Loss: s.Link.Loss, Link: link}
	if s.Hardened {
		opts.Harden = discovery.HardenAll()
	}
	return opts
}

// RunSpec assembles one runnable spec for a system. The run inherits
// the scenario seed, so spec + system fully determine the timeline.
func (s *ScenarioSpec) RunSpec(sys System) RunSpec {
	return RunSpec{
		System: sys,
		Lambda: s.Lambda,
		Seed:   s.Seed,
		Params: s.Params(),
		Opts:   s.Options(),
		Shards: s.Shards,
		Cross:  s.crossLink(),
	}
}
