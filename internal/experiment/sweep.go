package experiment

import (
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// SweepConfig selects the systems and design for a failure-rate sweep.
type SweepConfig struct {
	Systems []System
	Params  Params
	// Opts applies to every system; OptsFor, when set, overrides per
	// system (used by the Fig. 7 ablation which only mutates FRODO).
	Opts    Options
	OptsFor map[System]Options
	// Workers bounds the parallel worker pool; 0 means GOMAXPROCS.
	Workers int
	// Progress, when set, is called after each completed run.
	Progress func(done, total int)
}

// SweepResult holds the aggregated curves and efficiency baselines.
type SweepResult struct {
	Systems []System
	Params  Params
	// Curves maps each system to its metric series over λ.
	Curves map[System]metrics.Curve
	// MPrime is the measured zero-failure effort per system; M is the
	// minimum across systems (the paper's m = 7).
	MPrime map[System]int
	M      int
	// Raw keeps every run's observations, indexed [system][lambdaIdx].
	Raw map[System][][]metrics.RunResult
}

// Sweep runs the full experiment grid on a parallel worker pool: every
// (system, λ, run) cell is an independent simulation with its own kernel
// and derived seed, so the sweep is deterministic regardless of
// parallelism.
func Sweep(cfg SweepConfig) SweepResult {
	if len(cfg.Systems) == 0 {
		cfg.Systems = Systems()
	}
	if cfg.Params.Runs == 0 {
		cfg.Params = DefaultParams()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		sys            System
		lambdaIdx, run int
	}
	type outcome struct {
		job
		res metrics.RunResult
	}

	total := len(cfg.Systems) * len(cfg.Params.Lambdas) * cfg.Params.Runs
	jobs := make(chan job)
	outcomes := make(chan outcome)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				opts := cfg.Opts
				if o, ok := cfg.OptsFor[j.sys]; ok {
					opts = o
				}
				res := Run(RunSpec{
					System: j.sys,
					Lambda: cfg.Params.Lambdas[j.lambdaIdx],
					Seed:   SeedFor(cfg.Params.BaseSeed, j.sys, j.lambdaIdx, j.run),
					Params: cfg.Params,
					Opts:   opts,
				})
				outcomes <- outcome{job: j, res: res}
			}
		}()
	}
	go func() {
		for _, sys := range cfg.Systems {
			for li := range cfg.Params.Lambdas {
				for r := 0; r < cfg.Params.Runs; r++ {
					jobs <- job{sys: sys, lambdaIdx: li, run: r}
				}
			}
		}
		close(jobs)
		wg.Wait()
		close(outcomes)
	}()

	raw := map[System][][]metrics.RunResult{}
	for _, sys := range cfg.Systems {
		raw[sys] = make([][]metrics.RunResult, len(cfg.Params.Lambdas))
	}
	done := 0
	for o := range outcomes {
		raw[o.sys][o.lambdaIdx] = append(raw[o.sys][o.lambdaIdx], o.res)
		done++
		if cfg.Progress != nil {
			cfg.Progress(done, total)
		}
	}

	return aggregate(cfg, raw)
}

func aggregate(cfg SweepConfig, raw map[System][][]metrics.RunResult) SweepResult {
	res := SweepResult{
		Systems: cfg.Systems,
		Params:  cfg.Params,
		Curves:  map[System]metrics.Curve{},
		MPrime:  map[System]int{},
		Raw:     raw,
	}

	// Measure m' from the λ=0 cell when present; otherwise fall back to
	// the paper's constants.
	zeroIdx := -1
	for i, l := range cfg.Params.Lambdas {
		if l == 0 {
			zeroIdx = i
			break
		}
	}
	res.M = 1 << 30
	for _, sys := range cfg.Systems {
		mp := PaperMPrime(sys)
		if zeroIdx >= 0 && len(raw[sys][zeroIdx]) > 0 {
			mp = metrics.MeasureMPrime(raw[sys][zeroIdx])
		}
		res.MPrime[sys] = mp
		if mp < res.M {
			res.M = mp
		}
	}

	for _, sys := range cfg.Systems {
		curve := metrics.Curve{System: sys.String()}
		for li := range cfg.Params.Lambdas {
			p := metrics.Compute(raw[sys][li], res.M, res.MPrime[sys])
			p.Lambda = cfg.Params.Lambdas[li]
			curve.Points = append(curve.Points, p)
		}
		res.Curves[sys] = curve
	}
	return res
}
