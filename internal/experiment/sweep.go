package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// SweepConfig selects the systems and design for a failure-rate sweep.
type SweepConfig struct {
	Systems []System
	Params  Params
	// Opts applies to every system; OptsFor, when set, overrides per
	// system (used by the Fig. 7 ablation which only mutates FRODO).
	Opts    Options
	OptsFor map[System]Options
	// Workers bounds the parallel worker pool; 0 means GOMAXPROCS.
	Workers int
	// Progress, when set, is called after each completed run.
	Progress func(done, total int)
	// RetainRaw keeps every run's full RunResult in SweepResult.Raw. Off
	// by default: the sweep then retains only the streaming per-cell
	// summaries, so memory stays flat in the number of Users — the mode
	// the scale scenarios (thousands of Users, many cells) require.
	RetainRaw bool
}

// SweepResult holds the aggregated curves and efficiency baselines.
type SweepResult struct {
	Systems []System
	Params  Params
	// Curves maps each system to its metric series over λ.
	Curves map[System]metrics.Curve
	// MPrime is the measured zero-failure effort per system; M is the
	// minimum across systems (the paper's m = 7).
	MPrime map[System]int
	M      int
	// Cells holds the streaming per-cell accumulators, indexed
	// [system][lambdaIdx] — per-run summaries slotted by run index, so
	// derived statistics are identical at any worker count.
	Cells map[System][]*metrics.Cell
	// Raw keeps every run's observations, indexed [system][lambdaIdx][run].
	// Nil unless SweepConfig.RetainRaw is set.
	Raw map[System][][]metrics.RunResult
}

// Sweep runs the full experiment grid on a parallel worker pool: every
// (system, λ, run) cell is an independent simulation with its own kernel
// and derived seed, and results are aggregated into per-cell streaming
// accumulators in run-index order, so the sweep is deterministic
// regardless of parallelism.
func Sweep(cfg SweepConfig) SweepResult {
	if len(cfg.Systems) == 0 {
		cfg.Systems = Systems()
	}
	cfg.Params = cfg.Params.withDefaults()
	// Fail fast on invalid network options: validated once, up front, so
	// a bad parameterization surfaces immediately instead of panicking in
	// a worker mid-sweep.
	if _, err := cfg.Opts.netConfig(); err != nil {
		panic(fmt.Sprintf("experiment: invalid sweep options: %v", err))
	}
	for sys, o := range cfg.OptsFor {
		if _, err := o.netConfig(); err != nil {
			panic(fmt.Sprintf("experiment: invalid sweep options for %v: %v", sys, err))
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		sys            System
		lambdaIdx, run int
	}
	type outcome struct {
		job
		res metrics.RunResult
	}

	total := len(cfg.Systems) * len(cfg.Params.Lambdas) * cfg.Params.Runs
	jobs := make(chan job)
	outcomes := make(chan outcome)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One workspace per worker: consecutive runs on this goroutine
			// reuse the kernel's event pool, the network's node and group
			// storage, the recorder maps — and, per system shape, the whole
			// protocol-instance graph. TrustOptions is sound here because a
			// sweep's per-system Options are fixed for its whole lifetime
			// (cfg.Opts / cfg.OptsFor never change mid-sweep).
			ws := NewWorkspace()
			ws.TrustOptions()
			for j := range jobs {
				opts := cfg.Opts
				if o, ok := cfg.OptsFor[j.sys]; ok {
					opts = o
				}
				res := RunInto(ws, RunSpec{
					System: j.sys,
					Lambda: cfg.Params.Lambdas[j.lambdaIdx],
					Seed:   SeedFor(cfg.Params.BaseSeed, j.sys, j.lambdaIdx, j.run),
					Params: cfg.Params,
					Opts:   opts,
				})
				outcomes <- outcome{job: j, res: res}
			}
		}()
	}
	go func() {
		for _, sys := range cfg.Systems {
			for li := range cfg.Params.Lambdas {
				for r := 0; r < cfg.Params.Runs; r++ {
					jobs <- job{sys: sys, lambdaIdx: li, run: r}
				}
			}
		}
		close(jobs)
		wg.Wait()
		close(outcomes)
	}()

	cells := map[System][]*metrics.Cell{}
	var raw map[System][][]metrics.RunResult
	if cfg.RetainRaw {
		raw = map[System][][]metrics.RunResult{}
	}
	for _, sys := range cfg.Systems {
		cells[sys] = make([]*metrics.Cell, len(cfg.Params.Lambdas))
		for li, l := range cfg.Params.Lambdas {
			cells[sys][li] = metrics.NewCell(l, cfg.Params.Runs)
		}
		if cfg.RetainRaw {
			raw[sys] = make([][]metrics.RunResult, len(cfg.Params.Lambdas))
			for li := range cfg.Params.Lambdas {
				raw[sys][li] = make([]metrics.RunResult, cfg.Params.Runs)
			}
		}
	}
	done := 0
	for o := range outcomes {
		cells[o.sys][o.lambdaIdx].AddResult(o.run, o.res)
		if cfg.RetainRaw {
			raw[o.sys][o.lambdaIdx][o.run] = o.res
		}
		done++
		if cfg.Progress != nil {
			cfg.Progress(done, total)
		}
	}

	return aggregate(cfg, cells, raw)
}

func aggregate(cfg SweepConfig, cells map[System][]*metrics.Cell, raw map[System][][]metrics.RunResult) SweepResult {
	res := SweepResult{
		Systems: cfg.Systems,
		Params:  cfg.Params,
		Curves:  map[System]metrics.Curve{},
		MPrime:  map[System]int{},
		Cells:   cells,
		Raw:     raw,
	}

	// Measure m' from the λ=0 cell when present; otherwise fall back to
	// the paper's constants.
	zeroIdx := -1
	for i, l := range cfg.Params.Lambdas {
		if l == 0 {
			zeroIdx = i
			break
		}
	}
	res.M = 1 << 30
	for _, sys := range cfg.Systems {
		mp := PaperMPrime(sys)
		if zeroIdx >= 0 && cells[sys][zeroIdx].Runs() > 0 {
			mp = cells[sys][zeroIdx].MinPositiveEffort()
		}
		res.MPrime[sys] = mp
		if mp < res.M {
			res.M = mp
		}
	}

	for _, sys := range cfg.Systems {
		curve := metrics.Curve{System: sys.String()}
		for li := range cfg.Params.Lambdas {
			curve.Points = append(curve.Points, cells[sys][li].Point(res.M, res.MPrime[sys]))
		}
		res.Curves[sys] = curve
	}
	return res
}
